// Package chunk implements the chunked message buffer underlying bSOAP
// templates. Serialized messages are not stored in contiguous memory;
// they live in variable-sized, potentially non-contiguous chunks so that
// on-the-fly message expansion (shifting) is bounded by the size of a
// chunk rather than the size of the whole message (paper §3.2).
//
// Three configurable parameters govern the buffer, exactly the knobs the
// paper lists: the default initial chunk size, the threshold at which a
// chunk is split in two, and the slack initially left empty at the end of
// each chunk so small shifts need no reallocation.
package chunk

import (
	"fmt"
	"io"
	"net"

	"bsoap/internal/membuf"
	"bsoap/internal/trace"
)

// DefaultChunkSize is the default capacity of a freshly allocated chunk.
// The paper's experiments use 8 KiB and 32 KiB chunks; 32 KiB matches the
// SO_SNDBUF the authors configure.
const DefaultChunkSize = 32 * 1024

// Config holds the buffer tuning parameters from paper §3.2.
type Config struct {
	// ChunkSize is the capacity of newly allocated chunks. Zero selects
	// DefaultChunkSize.
	ChunkSize int
	// SplitThreshold is the used-byte count beyond which a chunk is split
	// in two instead of being grown further. Zero selects 2×ChunkSize.
	SplitThreshold int
	// TrailingSlack is the space left empty at the end of each chunk
	// during initial serialization, allowing shifts without reallocation.
	// Zero selects ChunkSize/8.
	TrailingSlack int
	// Pool supplies chunk backing arrays. Nil selects membuf.Default.
	// Arenas are returned to it by Buffer.Release (template discard and
	// eviction paths); class rounding may grant chunks more capacity
	// than requested, which only adds shift slack.
	Pool *membuf.Pool
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.SplitThreshold <= 0 {
		cfg.SplitThreshold = 2 * cfg.ChunkSize
	}
	if cfg.TrailingSlack <= 0 {
		cfg.TrailingSlack = cfg.ChunkSize / 8
	}
	if cfg.TrailingSlack >= cfg.ChunkSize {
		cfg.TrailingSlack = cfg.ChunkSize / 2
	}
	if cfg.Pool == nil {
		cfg.Pool = membuf.Default
	}
	return cfg
}

// Chunk is one contiguous piece of a serialized message. Its identity is
// stable: growing a chunk reallocates its backing array but not the Chunk
// itself, so positions held elsewhere (DUT entries) survive reallocation
// untouched.
type Chunk struct {
	buf        []byte // len = used bytes, cap = allocated
	arena      *membuf.Buf
	prev, next *Chunk
	owner      *Buffer

	// EntryLo and EntryHi bracket the half-open range of DUT-entry
	// indexes whose values live in this chunk. The chunk package does not
	// interpret them; the template layer maintains them so that offset
	// fix-ups after a shift or split touch only this chunk's entries.
	EntryLo, EntryHi int
}

// Len reports the number of used bytes in the chunk.
func (c *Chunk) Len() int { return len(c.buf) }

// Cap reports the allocated capacity of the chunk.
func (c *Chunk) Cap() int { return cap(c.buf) }

// Slack reports the unused capacity at the end of the chunk.
func (c *Chunk) Slack() int { return cap(c.buf) - len(c.buf) }

// Bytes returns the used bytes of the chunk. The slice aliases the chunk's
// storage; it is invalidated by any mutation of the buffer.
func (c *Chunk) Bytes() []byte { return c.buf }

// Next returns the following chunk, or nil at the tail.
func (c *Chunk) Next() *Chunk { return c.next }

// Prev returns the preceding chunk, or nil at the head.
func (c *Chunk) Prev() *Chunk { return c.prev }

// InsertGap moves the bytes [pos:Len()) right by delta, extending the
// chunk's used length, and reports whether the chunk had enough slack.
// The delta bytes opened at [pos:pos+delta) keep their previous contents
// and must be overwritten by the caller. InsertGap(pos, 0) is a no-op.
func (c *Chunk) InsertGap(pos, delta int) bool {
	if delta == 0 {
		return true
	}
	if pos < 0 || pos > len(c.buf) || delta < 0 {
		panic(fmt.Sprintf("chunk: InsertGap(%d, %d) out of range (len %d)", pos, delta, len(c.buf)))
	}
	if c.Slack() < delta {
		return false
	}
	old := len(c.buf)
	c.buf = c.buf[:old+delta]
	copy(c.buf[pos+delta:], c.buf[pos:old])
	c.owner.total += delta
	return true
}

// Pos identifies a byte position inside a buffer.
type Pos struct {
	C   *Chunk
	Off int
}

// Valid reports whether the position refers to a byte (or the end
// sentinel) within its chunk.
func (p Pos) Valid() bool { return p.C != nil && p.Off >= 0 && p.Off <= p.C.Len() }

// Buffer is a chunked append buffer with stable interior positions.
// The zero value is not usable; call New.
type Buffer struct {
	head, tail *Chunk
	nchunks    int
	total      int
	cfg        Config

	// Span is the trace span id of the call currently mutating the
	// buffer; the template layer sets it before applying a diff so chunk
	// grow/split events land in the right call's timeline. Zero records
	// the events unattributed.
	Span uint64
}

// New returns an empty buffer with the given configuration.
func New(cfg Config) *Buffer {
	return &Buffer{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Len reports the total number of used bytes across all chunks.
func (b *Buffer) Len() int { return b.total }

// NumChunks reports the number of chunks.
func (b *Buffer) NumChunks() int { return b.nchunks }

// Head returns the first chunk, or nil if the buffer is empty.
func (b *Buffer) Head() *Chunk { return b.head }

// Tail returns the last chunk, or nil if the buffer is empty.
func (b *Buffer) Tail() *Chunk { return b.tail }

// newChunk allocates a chunk with at least n bytes of capacity and links
// it after prev (or at the head when prev is nil and the list is empty).
func (b *Buffer) newChunk(capacity int) *Chunk {
	if capacity < b.cfg.ChunkSize {
		capacity = b.cfg.ChunkSize
	}
	a := b.cfg.Pool.Acquire(capacity)
	// Three-index slice: the arena may be class-rounded above the
	// requested capacity, but chunk growth/split behavior must match the
	// configured sizes exactly, so the extra is hidden.
	c := &Chunk{buf: a.B[0:0:capacity], arena: a, owner: b}
	if b.tail == nil {
		b.head, b.tail = c, c
	} else {
		c.prev = b.tail
		b.tail.next = c
		b.tail = c
	}
	b.nchunks++
	return c
}

// appendRoom returns the tail chunk if it can accept n more bytes while
// honouring the trailing-slack reservation, or a fresh chunk otherwise.
func (b *Buffer) appendRoom(n int) *Chunk {
	c := b.tail
	if c != nil && len(c.buf)+n <= cap(c.buf)-b.cfg.TrailingSlack {
		return c
	}
	// A single item larger than a default chunk gets a dedicated,
	// appropriately sized chunk.
	return b.newChunk(n + b.cfg.TrailingSlack)
}

// Reserve extends the buffer by n contiguous uninitialized bytes and
// returns their position. The caller must overwrite them. A reserved
// span never crosses a chunk boundary, so a DUT entry can address it with
// a single (chunk, offset) pair.
func (b *Buffer) Reserve(n int) Pos {
	if n < 0 {
		panic("chunk: negative Reserve")
	}
	c := b.appendRoom(n)
	off := len(c.buf)
	c.buf = c.buf[:off+n]
	b.total += n
	return Pos{C: c, Off: off}
}

// Append copies p onto the end of the buffer, contiguously, and returns
// the position of its first byte.
func (b *Buffer) Append(p []byte) Pos {
	pos := b.Reserve(len(p))
	copy(pos.C.buf[pos.Off:], p)
	return pos
}

// AppendString copies s onto the end of the buffer, contiguously.
func (b *Buffer) AppendString(s string) Pos {
	pos := b.Reserve(len(s))
	copy(pos.C.buf[pos.Off:], s)
	return pos
}

// AppendByte appends one byte.
func (b *Buffer) AppendByte(v byte) Pos {
	pos := b.Reserve(1)
	pos.C.buf[pos.Off] = v
	return pos
}

// CloseChunk forces subsequent appends to start a new chunk. The chunk
// overlaying engine uses this to align array portions on chunk
// boundaries.
func (b *Buffer) CloseChunk() {
	if b.tail != nil && b.tail.Len() > 0 {
		b.newChunk(b.cfg.ChunkSize)
	}
}

// GrowChunk reallocates c so that it can hold at least need more bytes
// beyond its current length, plus the configured trailing slack. Chunk
// identity and existing offsets are unchanged.
func (b *Buffer) GrowChunk(c *Chunk, need int) {
	want := len(c.buf) + need + b.cfg.TrailingSlack
	if want <= cap(c.buf) {
		return
	}
	if trace.Enabled() {
		trace.Rec(b.Span, trace.KindChunkGrow, int64(len(c.buf)), int64(need), int64(b.Ordinal(c)))
	}
	capacity := cap(c.buf) * 2
	if capacity < want {
		capacity = want
	}
	a := b.cfg.Pool.Acquire(capacity)
	nb := a.B[0:len(c.buf):capacity]
	copy(nb, c.buf)
	c.buf = nb
	c.arena.Release()
	c.arena = a
}

// SplitChunk moves the bytes [at:Len()) of c into a freshly allocated
// chunk inserted immediately after c, and returns the new chunk. The new
// chunk is allocated with the configured slack so the pending shift that
// triggered the split has room. Entry-range bookkeeping (EntryLo/EntryHi)
// is left to the caller, which knows where its entries are.
func (b *Buffer) SplitChunk(c *Chunk, at int) *Chunk {
	if at < 0 || at > len(c.buf) {
		panic(fmt.Sprintf("chunk: SplitChunk at %d out of range (len %d)", at, len(c.buf)))
	}
	if trace.Enabled() {
		trace.Rec(b.Span, trace.KindChunkSplit, int64(len(c.buf)), int64(at), int64(b.Ordinal(c)))
	}
	movedLen := len(c.buf) - at
	capacity := movedLen + b.cfg.TrailingSlack
	if capacity < b.cfg.ChunkSize {
		capacity = b.cfg.ChunkSize
	}
	a := b.cfg.Pool.Acquire(capacity)
	nc := &Chunk{buf: a.B[0:movedLen:capacity], arena: a, owner: b}
	copy(nc.buf, c.buf[at:])
	c.buf = c.buf[:at]

	nc.prev = c
	nc.next = c.next
	if c.next != nil {
		c.next.prev = nc
	} else {
		b.tail = nc
	}
	c.next = nc
	b.nchunks++
	return nc
}

// Ordinal reports c's 0-based position in the chunk list; trace events
// use it to name the chunk a shift or split happened in.
func (b *Buffer) Ordinal(c *Chunk) int {
	n := 0
	for x := b.head; x != nil && x != c; x = x.next {
		n++
	}
	return n
}

// Buffers returns the used byte ranges of every chunk, in order, suitable
// for a vectored write (writev / net.Buffers). The slices alias chunk
// storage. It allocates a fresh vector; steady-state send paths use
// BuffersInto with a retained header instead.
func (b *Buffer) Buffers() net.Buffers {
	var out net.Buffers
	return b.BuffersInto(&out)
}

// BuffersInto fills *dst with the used byte ranges of every chunk,
// reusing dst's backing array — the allocation-free counterpart of
// Buffers. The slices alias chunk storage; the vector is valid until the
// buffer is next mutated or released. Returns the filled vector.
func (b *Buffer) BuffersInto(dst *net.Buffers) net.Buffers {
	out := (*dst)[:0]
	for c := b.head; c != nil; c = c.next {
		if len(c.buf) > 0 {
			out = append(out, c.buf)
		}
	}
	*dst = out
	return out
}

// AppendTo appends the buffer's contents to dst and returns the extended
// slice — flattening without a fresh allocation when dst has capacity.
func (b *Buffer) AppendTo(dst []byte) []byte {
	if need := len(dst) + b.total; cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for c := b.head; c != nil; c = c.next {
		dst = append(dst, c.buf...)
	}
	return dst
}

// Bytes returns a copy of the buffer's contents as one contiguous slice.
// It allocates per call and exists for tests, tools and cold paths; hot
// paths flatten with AppendTo or send the chunks directly via
// BuffersInto.
func (b *Buffer) Bytes() []byte {
	return b.AppendTo(make([]byte, 0, b.total))
}

// WriteTo writes the buffer's contents to w, chunk by chunk.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for c := b.head; c != nil; c = c.next {
		if len(c.buf) == 0 {
			continue
		}
		m, err := w.Write(c.buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
		if m != len(c.buf) {
			return n, io.ErrShortWrite
		}
	}
	return n, nil
}

// Footprint reports the total allocated capacity across chunks — the
// resident-memory cost the paper's chunk overlaying bounds (§3.3).
func (b *Buffer) Footprint() int {
	n := 0
	for c := b.head; c != nil; c = c.next {
		n += cap(c.buf)
	}
	return n
}

// Reset discards all chunks without returning their arenas to the pool,
// keeping the configuration. Use Release when the caller owns the buffer
// exclusively and no slices into it remain live.
func (b *Buffer) Reset() {
	b.head, b.tail = nil, nil
	b.nchunks, b.total = 0, 0
}

// Release returns every chunk's arena to the pool and resets the buffer.
// The caller must hold exclusive ownership: no slice obtained from
// Bytes-free accessors (chunk Bytes, Buffers, BuffersInto, AppendTo's
// aliasing inputs) may be used afterwards. Owners that cannot prove
// exclusivity (e.g. eviction racing in-flight sends) must Reset or simply
// drop the buffer instead.
func (b *Buffer) Release() {
	for c := b.head; c != nil; c = c.next {
		c.arena.Release()
		c.arena = nil
		c.buf = nil
	}
	b.Reset()
}

// CheckInvariants validates the internal consistency of the buffer:
// linkage, byte accounting, and slack bounds. Tests and the fuzzing
// harness call it after every mutation; it panics on corruption.
func (b *Buffer) CheckInvariants() {
	var total, n int
	var prev *Chunk
	for c := b.head; c != nil; c = c.next {
		if c.prev != prev {
			panic("chunk: broken prev link")
		}
		if c.owner != b {
			panic("chunk: chunk owned by wrong buffer")
		}
		if len(c.buf) > cap(c.buf) {
			panic("chunk: len exceeds cap")
		}
		total += len(c.buf)
		n++
		prev = c
	}
	if prev != b.tail {
		panic("chunk: tail mismatch")
	}
	if total != b.total {
		panic(fmt.Sprintf("chunk: byte accounting off: counted %d, recorded %d", total, b.total))
	}
	if n != b.nchunks {
		panic(fmt.Sprintf("chunk: chunk accounting off: counted %d, recorded %d", n, b.nchunks))
	}
}
