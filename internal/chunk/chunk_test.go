package chunk

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func TestEmptyBuffer(t *testing.T) {
	b := New(Config{})
	if b.Len() != 0 || b.NumChunks() != 0 || b.Head() != nil || b.Tail() != nil {
		t.Fatal("fresh buffer not empty")
	}
	if got := b.Bytes(); len(got) != 0 {
		t.Fatalf("Bytes() = %q", got)
	}
	if bufs := b.Buffers(); len(bufs) != 0 {
		t.Fatalf("Buffers() = %d entries", len(bufs))
	}
	b.CheckInvariants()
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ChunkSize != DefaultChunkSize {
		t.Errorf("ChunkSize = %d", cfg.ChunkSize)
	}
	if cfg.SplitThreshold != 2*DefaultChunkSize {
		t.Errorf("SplitThreshold = %d", cfg.SplitThreshold)
	}
	if cfg.TrailingSlack != DefaultChunkSize/8 {
		t.Errorf("TrailingSlack = %d", cfg.TrailingSlack)
	}
	// Slack must always be smaller than the chunk size.
	cfg = Config{ChunkSize: 100, TrailingSlack: 1000}.withDefaults()
	if cfg.TrailingSlack >= cfg.ChunkSize {
		t.Errorf("slack %d not clamped below chunk size %d", cfg.TrailingSlack, cfg.ChunkSize)
	}
}

func TestAppendAndBytes(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 8})
	var want bytes.Buffer
	for i := 0; i < 100; i++ {
		s := strings.Repeat("x", i%13+1)
		b.AppendString(s)
		want.WriteString(s)
		b.CheckInvariants()
	}
	if got := b.Bytes(); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("contents diverge: %d vs %d bytes", len(got), want.Len())
	}
	if b.NumChunks() < 2 {
		t.Fatalf("expected multiple chunks for %d bytes with 64-byte chunks, got %d", b.Len(), b.NumChunks())
	}
}

func TestAppendIsContiguous(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 8})
	for i := 0; i < 200; i++ {
		pos := b.AppendString("0123456789")
		if pos.Off+10 > pos.C.Len() {
			t.Fatalf("append split across chunks at iteration %d", i)
		}
		if got := string(pos.C.Bytes()[pos.Off : pos.Off+10]); got != "0123456789" {
			t.Fatalf("appended bytes read back %q", got)
		}
	}
}

func TestTrailingSlackHonoured(t *testing.T) {
	b := New(Config{ChunkSize: 100, TrailingSlack: 20})
	for i := 0; i < 50; i++ {
		b.AppendString("0123456789")
	}
	for c := b.Head(); c != nil; c = c.Next() {
		if c.Next() != nil && c.Slack() < 20 {
			// Every non-tail chunk produced by plain appends must keep
			// its slack reservation.
			t.Fatalf("chunk slack %d below reservation 20", c.Slack())
		}
	}
}

func TestOversizedAppendGetsOwnChunk(t *testing.T) {
	b := New(Config{ChunkSize: 32, TrailingSlack: 4})
	big := strings.Repeat("A", 100)
	pos := b.AppendString(big)
	if pos.Off != 0 || pos.C.Len() != 100 {
		t.Fatalf("oversized append at off %d in chunk of len %d", pos.Off, pos.C.Len())
	}
	if got := string(b.Bytes()); got != big {
		t.Fatalf("contents %q", got)
	}
	b.CheckInvariants()
}

func TestAppendByte(t *testing.T) {
	b := New(Config{ChunkSize: 16, TrailingSlack: 2})
	for i := byte('a'); i <= 'z'; i++ {
		b.AppendByte(i)
	}
	if got := string(b.Bytes()); got != "abcdefghijklmnopqrstuvwxyz" {
		t.Fatalf("contents %q", got)
	}
}

func TestInsertGapWithinSlack(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 16})
	pos := b.AppendString("hello world")
	c := pos.C
	if !c.InsertGap(5, 3) {
		t.Fatal("InsertGap refused despite slack")
	}
	copy(c.Bytes()[5:8], "XYZ")
	if got := string(b.Bytes()); got != "helloXYZ world" {
		t.Fatalf("after gap: %q", got)
	}
	if b.Len() != 14 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.CheckInvariants()
}

func TestInsertGapAtEnds(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 16})
	pos := b.AppendString("abc")
	c := pos.C
	if !c.InsertGap(0, 2) {
		t.Fatal("gap at head refused")
	}
	copy(c.Bytes()[0:2], ">>")
	if !c.InsertGap(c.Len(), 2) {
		t.Fatal("gap at tail refused")
	}
	copy(c.Bytes()[c.Len()-2:], "<<")
	if got := string(b.Bytes()); got != ">>abc<<" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertGapZeroIsNoop(t *testing.T) {
	b := New(Config{ChunkSize: 64})
	pos := b.AppendString("abc")
	if !pos.C.InsertGap(1, 0) {
		t.Fatal("zero gap refused")
	}
	if got := string(b.Bytes()); got != "abc" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertGapInsufficientSlack(t *testing.T) {
	b := New(Config{ChunkSize: 16, TrailingSlack: 2})
	pos := b.Reserve(14)
	copy(pos.C.Bytes(), "0123456789abcd")
	if pos.C.InsertGap(0, 10) {
		t.Fatal("InsertGap succeeded beyond capacity")
	}
	if got := string(b.Bytes()); got != "0123456789abcd" {
		t.Fatalf("failed gap mutated chunk: %q", got)
	}
}

func TestGrowChunkPreservesContentsAndIdentity(t *testing.T) {
	b := New(Config{ChunkSize: 16, TrailingSlack: 2})
	pos := b.AppendString("0123456789abcd")
	c := pos.C
	b.GrowChunk(c, 100)
	if c.Cap() < c.Len()+100 {
		t.Fatalf("cap %d after grow", c.Cap())
	}
	if got := string(c.Bytes()); got != "0123456789abcd" {
		t.Fatalf("contents after grow: %q", got)
	}
	if !c.InsertGap(7, 50) {
		t.Fatal("gap refused after grow")
	}
	b.CheckInvariants()
}

func TestGrowChunkNoopWhenRoomy(t *testing.T) {
	b := New(Config{ChunkSize: 1024, TrailingSlack: 64})
	pos := b.AppendString("small")
	before := pos.C.Cap()
	b.GrowChunk(pos.C, 4)
	if pos.C.Cap() != before {
		t.Fatal("GrowChunk reallocated unnecessarily")
	}
}

func TestSplitChunk(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 8})
	pos := b.AppendString("0123456789")
	c := pos.C
	nc := b.SplitChunk(c, 4)
	if string(c.Bytes()) != "0123" || string(nc.Bytes()) != "456789" {
		t.Fatalf("split contents: %q | %q", c.Bytes(), nc.Bytes())
	}
	if c.Next() != nc || nc.Prev() != c {
		t.Fatal("split linkage wrong")
	}
	if got := string(b.Bytes()); got != "0123456789" {
		t.Fatalf("whole contents after split: %q", got)
	}
	if b.NumChunks() != 2 {
		t.Fatalf("NumChunks = %d", b.NumChunks())
	}
	b.CheckInvariants()
}

func TestSplitChunkInMiddleOfList(t *testing.T) {
	b := New(Config{ChunkSize: 8, TrailingSlack: 1})
	b.AppendString("aaaaaa")
	b.AppendString("bbbbbb")
	b.AppendString("cccccc")
	first := b.Head()
	b.SplitChunk(first, 3)
	if got := string(b.Bytes()); got != "aaaaaabbbbbbcccccc" {
		t.Fatalf("contents: %q", got)
	}
	b.CheckInvariants()
	// Tail must still be the original last chunk.
	if string(b.Tail().Bytes()) != "cccccc" {
		t.Fatalf("tail contents: %q", b.Tail().Bytes())
	}
}

func TestSplitAtEndsProducesEmptySide(t *testing.T) {
	b := New(Config{ChunkSize: 64})
	pos := b.AppendString("abcdef")
	nc := b.SplitChunk(pos.C, 6)
	if nc.Len() != 0 || pos.C.Len() != 6 {
		t.Fatalf("split at end: %d | %d", pos.C.Len(), nc.Len())
	}
	b.CheckInvariants()
	if got := string(b.Bytes()); got != "abcdef" {
		t.Fatalf("contents: %q", got)
	}
}

func TestCloseChunk(t *testing.T) {
	b := New(Config{ChunkSize: 1024})
	b.AppendString("first")
	b.CloseChunk()
	pos := b.AppendString("second")
	if pos.C == b.Head() {
		t.Fatal("append after CloseChunk landed in old chunk")
	}
	if pos.Off != 0 {
		t.Fatalf("append after CloseChunk at offset %d", pos.Off)
	}
	if got := string(b.Bytes()); got != "firstsecond" {
		t.Fatalf("contents: %q", got)
	}
	// CloseChunk on an empty tail must not pile up empty chunks.
	n := b.NumChunks()
	b.CloseChunk()
	b.CloseChunk()
	if b.NumChunks() != n+1 {
		t.Fatalf("repeated CloseChunk grew chunks: %d -> %d", n, b.NumChunks())
	}
}

func TestWriteTo(t *testing.T) {
	b := New(Config{ChunkSize: 16, TrailingSlack: 2})
	var want bytes.Buffer
	for i := 0; i < 40; i++ {
		b.AppendString("chunked ")
		want.WriteString("chunked ")
	}
	var got bytes.Buffer
	n, err := b.WriteTo(&got)
	if err != nil || n != int64(want.Len()) {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("WriteTo contents diverge")
	}
}

type shortWriter struct{ fail bool }

func (w *shortWriter) Write(p []byte) (int, error) {
	if w.fail {
		return len(p) / 2, nil
	}
	return len(p), nil
}

func TestWriteToShortWrite(t *testing.T) {
	b := New(Config{ChunkSize: 16})
	b.AppendString("0123456789")
	if _, err := b.WriteTo(&shortWriter{fail: true}); err != io.ErrShortWrite {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
}

func TestBuffersMatchesBytes(t *testing.T) {
	b := New(Config{ChunkSize: 32, TrailingSlack: 4})
	for i := 0; i < 30; i++ {
		b.AppendString("0123456789")
	}
	var joined []byte
	for _, seg := range b.Buffers() {
		joined = append(joined, seg...)
	}
	if !bytes.Equal(joined, b.Bytes()) {
		t.Fatal("Buffers() and Bytes() diverge")
	}
}

func TestReset(t *testing.T) {
	b := New(Config{ChunkSize: 32})
	b.AppendString("data")
	b.Reset()
	if b.Len() != 0 || b.NumChunks() != 0 {
		t.Fatal("Reset left state behind")
	}
	b.AppendString("fresh")
	if got := string(b.Bytes()); got != "fresh" {
		t.Fatalf("after reset: %q", got)
	}
	b.CheckInvariants()
}

// TestRandomOperationSequence drives the buffer through random appends,
// gaps, grows and splits, mirroring every mutation against a flat byte
// slice, and checks the buffer always matches the model.
func TestRandomOperationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		b := New(Config{ChunkSize: 64, TrailingSlack: 8})
		var model []byte
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0: // append
				n := rng.Intn(20) + 1
				p := make([]byte, n)
				for i := range p {
					p[i] = byte('a' + rng.Intn(26))
				}
				b.Append(p)
				model = append(model, p...)
			case 1: // gap in a random chunk
				c, base := randomChunk(rng, b)
				if c == nil || c.Len() == 0 {
					continue
				}
				pos := rng.Intn(c.Len() + 1)
				delta := rng.Intn(8) + 1
				if c.Slack() < delta {
					b.GrowChunk(c, delta)
				}
				if !c.InsertGap(pos, delta) {
					t.Fatal("gap refused after grow")
				}
				fill := bytes.Repeat([]byte{'#'}, delta)
				copy(c.Bytes()[pos:pos+delta], fill)
				model = append(model[:base+pos], append(append([]byte{}, fill...), model[base+pos:]...)...)
			case 2: // split a random chunk
				c, _ := randomChunk(rng, b)
				if c == nil {
					continue
				}
				b.SplitChunk(c, rng.Intn(c.Len()+1))
			case 3: // grow a random chunk
				c, _ := randomChunk(rng, b)
				if c == nil {
					continue
				}
				b.GrowChunk(c, rng.Intn(64))
			}
			b.CheckInvariants()
			if !bytes.Equal(b.Bytes(), model) {
				t.Fatalf("trial %d op %d: buffer diverged from model (%d vs %d bytes)",
					trial, op, b.Len(), len(model))
			}
		}
	}
}

// randomChunk picks a uniformly random chunk and returns it along with the
// byte offset of its start within the whole buffer.
func randomChunk(rng *rand.Rand, b *Buffer) (*Chunk, int) {
	if b.NumChunks() == 0 {
		return nil, 0
	}
	idx := rng.Intn(b.NumChunks())
	base := 0
	c := b.Head()
	for i := 0; i < idx; i++ {
		base += c.Len()
		c = c.Next()
	}
	return c, base
}

func TestPosValid(t *testing.T) {
	b := New(Config{ChunkSize: 32})
	pos := b.AppendString("xyz")
	if !pos.Valid() {
		t.Fatal("fresh position invalid")
	}
	if (Pos{}).Valid() {
		t.Fatal("zero position valid")
	}
	if (Pos{C: pos.C, Off: pos.C.Len() + 1}).Valid() {
		t.Fatal("out-of-range position valid")
	}
}

func TestFootprint(t *testing.T) {
	b := New(Config{ChunkSize: 64, TrailingSlack: 8})
	if b.Footprint() != 0 {
		t.Fatal("empty buffer has footprint")
	}
	b.AppendString("data")
	if b.Footprint() < 64 {
		t.Fatalf("footprint %d below chunk capacity", b.Footprint())
	}
	before := b.Footprint()
	b.CloseChunk()
	b.AppendString("more")
	if b.Footprint() <= before {
		t.Fatal("footprint did not grow with a second chunk")
	}
	// Footprint counts capacity, not use.
	if b.Footprint() < b.Len() {
		t.Fatal("footprint below used bytes")
	}
}
