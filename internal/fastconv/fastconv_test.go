package fastconv

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"bsoap/internal/xsdlex"
)

func TestWriteIntMatchesStrconv(t *testing.T) {
	f := func(v int32) bool {
		var buf [xsdlex.MaxIntWidth]byte
		n := WriteInt(buf[:], v)
		return string(buf[:n]) == strconv.FormatInt(int64(v), 10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
	for _, v := range []int32{0, 1, -1, 9, 10, -10, math.MaxInt32, math.MinInt32} {
		var buf [xsdlex.MaxIntWidth]byte
		n := WriteInt(buf[:], v)
		if want := strconv.FormatInt(int64(v), 10); string(buf[:n]) != want {
			t.Errorf("WriteInt(%d) = %q, want %q", v, buf[:n], want)
		}
	}
}

func TestWriteLongMatchesStrconv(t *testing.T) {
	f := func(v int64) bool {
		var buf [xsdlex.MaxLongWidth]byte
		n := WriteLong(buf[:], v)
		return string(buf[:n]) == strconv.FormatInt(v, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, math.MinInt64, math.MaxInt64} {
		var buf [xsdlex.MaxLongWidth]byte
		n := WriteLong(buf[:], v)
		if want := strconv.FormatInt(v, 10); string(buf[:n]) != want {
			t.Errorf("WriteLong(%d) = %q, want %q", v, buf[:n], want)
		}
	}
}

func TestWriteDoubleMatchesXsdlex(t *testing.T) {
	f := func(v float64) bool {
		var buf [xsdlex.MaxDoubleWidth]byte
		n := WriteDouble(buf[:], v)
		return string(buf[:n]) == string(xsdlex.AppendDouble(nil, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteBool(t *testing.T) {
	var buf [8]byte
	if n := WriteBool(buf[:], true); string(buf[:n]) != "true" {
		t.Errorf("WriteBool(true) = %q", buf[:n])
	}
	if n := WriteBool(buf[:], false); string(buf[:n]) != "false" {
		t.Errorf("WriteBool(false) = %q", buf[:n])
	}
}

func TestPad(t *testing.T) {
	b := []byte("XXXXXXXX")
	Pad(b, 2, 6)
	if string(b) != "XX    XX" {
		t.Errorf("Pad = %q", b)
	}
	Pad(b, 3, 3) // empty range is a no-op
	if string(b) != "XX    XX" {
		t.Errorf("Pad empty range changed buffer: %q", b)
	}
}

func TestWidthsMatchWrites(t *testing.T) {
	f := func(v int32, d float64) bool {
		var bi [xsdlex.MaxIntWidth]byte
		var bd [xsdlex.MaxDoubleWidth]byte
		return IntWidth(v) == WriteInt(bi[:], v) && DoubleWidth(d) == WriteDouble(bd[:], d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteDouble(b *testing.B) {
	var buf [xsdlex.MaxDoubleWidth]byte
	v := 3.14159265358979
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WriteDouble(buf[:], v)
	}
}

func BenchmarkWriteInt(b *testing.B) {
	var buf [xsdlex.MaxIntWidth]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WriteInt(buf[:], -123456789)
	}
}

func TestDoubleConverterSwap(t *testing.T) {
	var buf [xsdlex.MaxDoubleWidth]byte
	def := WriteDouble(buf[:], 3.25)
	defText := string(buf[:def])

	restore := SetDoubleConverter(DragonDoubleConverter)
	n := WriteDouble(buf[:], 3.25)
	if string(buf[:n]) != defText {
		t.Fatalf("dragon converter diverges: %q vs %q", buf[:n], defText)
	}
	// XSD special-value names must be preserved under the swap.
	n = WriteDouble(buf[:], math.Inf(-1))
	if string(buf[:n]) != "-INF" {
		t.Fatalf("dragon -Inf = %q", buf[:n])
	}
	n = WriteDouble(buf[:], math.NaN())
	if string(buf[:n]) != "NaN" {
		t.Fatalf("dragon NaN = %q", buf[:n])
	}
	restore()
	n = WriteDouble(buf[:], 3.25)
	if string(buf[:n]) != defText {
		t.Fatal("restore did not reinstate the default converter")
	}
}

func TestDragonConverterMatchesDefaultBroadly(t *testing.T) {
	f := func(v float64) bool {
		var a, b [xsdlex.MaxDoubleWidth]byte
		na := defaultDoubleConverter(a[:], v)
		nb := DragonDoubleConverter(b[:], v)
		return string(a[:na]) == string(b[:nb])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
