// Package fastconv provides the tight value-to-ASCII conversion loops the
// serialization hot paths use. The paper identifies conversion between
// floating-point numbers and their ASCII representation as the dominant
// SOAP cost (≈90% of end-to-end time), so every serializer in this
// repository funnels through these routines.
//
// Unlike strconv's generic appenders, these writers target a caller-owned
// region of a template chunk: they write the value at a fixed position,
// report the bytes used, and can left-pad or right-pad to a field width
// without allocating.
package fastconv

import (
	"bsoap/internal/dragon"
	"bsoap/internal/xsdlex"
	"math"
)

// WriteInt writes the decimal form of v at dst[0:] and returns the number
// of bytes written. dst must have room for xsdlex.MaxIntWidth bytes.
func WriteInt(dst []byte, v int32) int {
	if v == 0 {
		dst[0] = '0'
		return 1
	}
	var tmp [xsdlex.MaxIntWidth]byte
	u := uint32(v)
	neg := v < 0
	if neg {
		u = uint32(-int64(v)) // handles MinInt32
	}
	i := len(tmp)
	for u > 0 {
		i--
		tmp[i] = byte('0' + u%10)
		u /= 10
	}
	n := 0
	if neg {
		dst[0] = '-'
		n = 1
	}
	n += copy(dst[n:], tmp[i:])
	return n
}

// WriteLong writes the decimal form of v at dst[0:] and returns the number
// of bytes written. dst must have room for xsdlex.MaxLongWidth bytes.
func WriteLong(dst []byte, v int64) int {
	if v == 0 {
		dst[0] = '0'
		return 1
	}
	var tmp [xsdlex.MaxLongWidth]byte
	u := uint64(v)
	neg := v < 0
	if neg {
		u = -u
	}
	i := len(tmp)
	for u > 0 {
		i--
		tmp[i] = byte('0' + u%10)
		u /= 10
	}
	n := 0
	if neg {
		dst[0] = '-'
		n = 1
	}
	n += copy(dst[n:], tmp[i:])
	return n
}

// doubleConverter is the pluggable double→ASCII routine every
// serializer in the repository funnels through. The default is the
// strconv-backed shortest form; SetDoubleConverter swaps it, e.g. for
// the exact big-integer dragon printer that emulates 2004-era
// conversion costs. Not safe to swap concurrently with serialization.
var doubleConverter = defaultDoubleConverter

func defaultDoubleConverter(dst []byte, v float64) int {
	return len(xsdlex.AppendDouble(dst[:0], v))
}

// DragonDoubleConverter converts through the from-scratch exact
// Dragon4 printer (internal/dragon), with the XSD special-value names.
// It is deliberately slow — big-integer arithmetic per value, like the
// printf-family conversions of 2004-era SOAP stacks.
func DragonDoubleConverter(dst []byte, v float64) int {
	switch {
	case math.IsInf(v, 1):
		return copy(dst, "INF")
	case math.IsInf(v, -1):
		return copy(dst, "-INF")
	case math.IsNaN(v):
		return copy(dst, "NaN")
	}
	return len(dragon.AppendShortest(dst[:0], v))
}

// SetDoubleConverter installs fn as the double conversion routine and
// returns a function restoring the previous one.
func SetDoubleConverter(fn func(dst []byte, v float64) int) (restore func()) {
	prev := doubleConverter
	doubleConverter = fn
	return func() { doubleConverter = prev }
}

// WriteDouble writes the shortest round-trip form of v at dst[0:] and
// returns the number of bytes written. dst must have room for
// xsdlex.MaxDoubleWidth bytes.
func WriteDouble(dst []byte, v float64) int {
	return doubleConverter(dst, v)
}

// WriteBool writes "true" or "false" and returns the bytes written.
func WriteBool(dst []byte, v bool) int {
	if v {
		return copy(dst, "true")
	}
	return copy(dst, "false")
}

// Pad fills dst[from:to] with the XML-legal space character. The paper's
// stuffing technique pads the gap between a field's closing tag and the
// next opening tag with whitespace, which XML explicitly permits.
func Pad(dst []byte, from, to int) {
	for i := from; i < to; i++ {
		dst[i] = ' '
	}
}

// IntWidth reports the encoded width of v. Wrapper kept here so hot paths
// need only one import.
func IntWidth(v int32) int { return xsdlex.IntLen(v) }

// DoubleWidth reports the encoded width of v.
func DoubleWidth(v float64) int { return xsdlex.DoubleLen(v) }
