package membuf

import (
	"sync"
	"testing"
)

func TestAcquireCapacityAndClassRounding(t *testing.T) {
	p := NewPool()
	for _, n := range []int{0, 1, 63, 64, 65, 4095, 1 << 20, MaxPooled} {
		b := p.Acquire(n)
		if len(b.B) != 0 {
			t.Errorf("Acquire(%d): len = %d, want 0", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Errorf("Acquire(%d): cap = %d, want >= %d", n, cap(b.B), n)
		}
		if c := cap(b.B); c&(c-1) != 0 {
			t.Errorf("Acquire(%d): cap %d not a power of two", n, c)
		}
		b.Release()
	}
}

func TestOversizeUnpooled(t *testing.T) {
	p := NewPool()
	b := p.Acquire(MaxPooled + 1)
	if cap(b.B) < MaxPooled+1 {
		t.Fatalf("oversize cap = %d", cap(b.B))
	}
	b.Release()
	if s := p.Stats(); s.Oversize != 1 || s.Outstanding() != 0 {
		t.Fatalf("stats after oversize roundtrip: %+v", s)
	}
}

func TestReleaseRecyclesArena(t *testing.T) {
	p := NewPool()
	a := p.Acquire(100)
	arr := &a.B[:1][0]
	a.Release()
	// Same goroutine, no GC pressure: the class pool should hand the
	// arena straight back.
	b := p.Acquire(100)
	if &b.B[:1][0] != arr {
		t.Error("arena not recycled by immediate re-acquire")
	}
	b.Release()
	if s := p.Stats(); s.Acquires != 2 || s.Releases != 2 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Acquire(8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestReleaseNilNoop(t *testing.T) {
	var b *Buf
	b.Release() // must not panic
}

func TestPoisonOnRelease(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Acquire(64)
	b.B = b.B[:64]
	for i := range b.B {
		b.B[i] = 'A'
	}
	held := b.B // simulated use-after-release
	b.Release()
	for i, v := range held {
		if v != PoisonByte {
			t.Fatalf("byte %d after release = %#x, want %#x", i, v, PoisonByte)
		}
	}
}

// TestLeakTrackingConcurrent hammers the pool from many goroutines with
// tracking on (run under -race in check.sh): afterwards nothing may be
// outstanding, except the buffer deliberately leaked to prove the
// detector sees it.
func TestLeakTrackingConcurrent(t *testing.T) {
	p := NewPool()
	p.EnableTracking()
	defer p.DisableTracking()

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := p.Acquire(1 << uint(i%14))
				b.B = append(b.B, byte(w))
				b.Release()
			}
		}(w)
	}
	wg.Wait()

	if leaks := p.Leaks(); len(leaks) != 0 {
		t.Fatalf("leaked buffers after balanced workload: %v", leaks)
	}
	if s := p.Stats(); s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", s.Outstanding())
	}

	leaked := p.Acquire(128)
	if leaks := p.Leaks(); len(leaks) != 1 {
		t.Fatalf("tracker reports %d leaks, want the 1 deliberate one", len(leaks))
	}
	leaked.Release()
}
