//go:build !membufpoison

package membuf

// poisonDefault is false in normal builds: released arenas keep their
// bytes until recycled. Build with -tags membufpoison to overwrite them
// with PoisonByte and make any use-after-release visible immediately.
const poisonDefault = false
