//go:build membufpoison

package membuf

// poisonDefault is true under the membufpoison tag: every Release
// overwrites the arena with PoisonByte, so a holder that kept a slice
// past release reads garbage deterministically instead of silently
// racing the next owner.
const poisonDefault = true
