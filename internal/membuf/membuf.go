// Package membuf is the buffer-ownership layer under the send path: a
// size-classed arena pool with explicit acquire/release semantics.
//
// The differential-serialization engine's whole point is that warm sends
// reuse bytes the peer already has; membuf extends the same discipline to
// the memory holding those bytes. Template chunks, growth copies and
// split halves draw their backing arrays from here instead of the global
// allocator, so template churn (build, grow, split, evict) recycles
// arenas instead of leaving garbage for the collector — the residual cost
// the paper's model does not charge but a concurrent Go port pays in GC
// pressure.
//
// # Ownership rules
//
//   - Acquire returns a *Buf whose B field is a zero-length slice with at
//     least the requested capacity. The caller owns it exclusively.
//   - Ownership transfers at most once more: whoever ends up holding the
//     Buf (a chunk, a template) must Release it exactly once, after which
//     the bytes must not be touched — under the `membufpoison` build tag
//     (or SetPoison(true)) they are overwritten with PoisonByte to make
//     use-after-release loud.
//   - Release of a Buf twice panics; that is a caller bug, not a
//     recoverable condition.
//   - Releasing is optional for correctness: an un-Released Buf is
//     ordinary garbage and the collector reclaims it. Leak tracking
//     (EnableTracking) exists so tests can prove hot paths do release.
//
// Only owners with exclusive access may Release: the sharded pool
// runtime's LRU eviction, which can race in-flight calls still holding a
// replica, drops references and lets the collector finish instead (see
// DESIGN.md §9).
package membuf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PoisonByte fills released buffers when poisoning is on.
const PoisonByte = 0xDB

const (
	// minClassBits..maxClassBits bound the pooled size classes:
	// 64 B … 4 MiB in powers of two. Larger requests are served by the
	// allocator directly (and Release on them is a counted no-op).
	minClassBits = 6
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest request served from a size class.
	MaxPooled = 1 << maxClassBits

	oversizeClass = -1
)

// Buf is one pooled byte buffer. B always aliases the arena's full
// backing array (len is caller-managed, cap is the class size). The
// struct itself is recycled along with its bytes.
type Buf struct {
	B []byte

	class int8
	pool  *Pool // nil while released (double-release detection)
}

// Cap reports the buffer's full capacity.
func (b *Buf) Cap() int { return cap(b.B) }

// Release returns the buffer to its pool. Releasing twice panics; the
// bytes must not be used afterwards. Release of a nil Buf is a no-op so
// cleanup paths need not branch.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	p := b.pool
	if p == nil {
		panic("membuf: Buf released twice")
	}
	b.pool = nil
	p.release(b)
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Acquires and Releases count Acquire/Release calls (including
	// oversize ones).
	Acquires, Releases int64
	// Misses counts acquires the size-class pools could not serve (a
	// fresh arena was allocated).
	Misses int64
	// Oversize counts acquires above MaxPooled, served unpooled.
	Oversize int64
}

// Outstanding reports buffers currently acquired and not yet released.
func (s Stats) Outstanding() int64 { return s.Acquires - s.Releases }

// Pool hands out size-classed buffers. The zero value is not usable;
// call NewPool (or use Default). All methods are safe for concurrent
// use — the classes are sync.Pools, so a release on one goroutine can
// serve an acquire on another without any lock of membuf's own.
type Pool struct {
	classes [numClasses]sync.Pool

	acquires atomic.Int64
	releases atomic.Int64
	misses   atomic.Int64
	oversize atomic.Int64

	poison atomic.Bool

	// tracking mode (tests): live maps Buf → acquire site.
	tracking atomic.Bool
	trackMu  sync.Mutex
	live     map[*Buf]string
}

// Default is the process-wide pool the chunk layer draws from unless a
// Config names another.
var Default = NewPool()

// NewPool returns an empty pool. Poisoning defaults on when the binary
// is built with the `membufpoison` tag.
func NewPool() *Pool {
	p := &Pool{}
	p.poison.Store(poisonDefault)
	return p
}

// SetPoison turns poison-on-release on or off at runtime (tests; the
// membufpoison build tag flips the default for whole binaries).
func (p *Pool) SetPoison(on bool) { p.poison.Store(on) }

// classFor returns the smallest class index whose size holds n, or
// oversizeClass.
func classFor(n int) int {
	if n > MaxPooled {
		return oversizeClass
	}
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	return c
}

// Acquire returns a buffer with len(B) == 0 and cap(B) >= n. The caller
// owns it until Release.
func (p *Pool) Acquire(n int) *Buf {
	if n < 0 {
		panic("membuf: negative Acquire")
	}
	p.acquires.Add(1)
	class := classFor(n)
	var b *Buf
	if class == oversizeClass {
		p.oversize.Add(1)
		b = &Buf{B: make([]byte, 0, n), class: oversizeClass}
	} else if got, ok := p.classes[class].Get().(*Buf); ok {
		b = got
		b.B = b.B[:0]
	} else {
		p.misses.Add(1)
		b = &Buf{B: make([]byte, 0, 1<<(minClassBits+class)), class: int8(class)}
	}
	b.pool = p
	if p.tracking.Load() {
		p.track(b)
	}
	return b
}

// release is the pool half of Buf.Release.
func (p *Pool) release(b *Buf) {
	p.releases.Add(1)
	if p.tracking.Load() {
		p.untrack(b)
	}
	if p.poison.Load() {
		full := b.B[:cap(b.B)]
		for i := range full {
			full[i] = PoisonByte
		}
	}
	if b.class == oversizeClass {
		return // unpooled; the collector takes it from here
	}
	p.classes[b.class].Put(b)
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Acquires: p.acquires.Load(),
		Releases: p.releases.Load(),
		Misses:   p.misses.Load(),
		Oversize: p.oversize.Load(),
	}
}

// EnableTracking records the acquire site of every live buffer until
// DisableTracking; Leaks reports what is still held. Tracking allocates
// and takes a lock per acquire/release — tests only.
func (p *Pool) EnableTracking() {
	p.trackMu.Lock()
	p.live = make(map[*Buf]string)
	p.trackMu.Unlock()
	p.tracking.Store(true)
}

// DisableTracking stops tracking and drops the live map.
func (p *Pool) DisableTracking() {
	p.tracking.Store(false)
	p.trackMu.Lock()
	p.live = nil
	p.trackMu.Unlock()
}

// Leaks returns the acquire sites of buffers still live under tracking.
func (p *Pool) Leaks() []string {
	p.trackMu.Lock()
	defer p.trackMu.Unlock()
	out := make([]string, 0, len(p.live))
	for _, site := range p.live {
		out = append(out, site)
	}
	return out
}

func (p *Pool) track(b *Buf) {
	_, file, line, _ := runtime.Caller(2)
	p.trackMu.Lock()
	if p.live != nil {
		p.live[b] = fmt.Sprintf("%s:%d", file, line)
	}
	p.trackMu.Unlock()
}

func (p *Pool) untrack(b *Buf) {
	p.trackMu.Lock()
	delete(p.live, b)
	p.trackMu.Unlock()
}
