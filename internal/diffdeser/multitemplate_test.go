package diffdeser

import (
	"bytes"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

// TestAlternatingStructuresStayFast verifies the multi-template LRU: a
// client alternating between two message shapes on one key keeps
// hitting the fast path after each shape has been seen once.
func TestAlternatingStructuresStayFast(t *testing.T) {
	build := func(n int) (*wire.Message, wire.DoubleArrayRef) {
		m := wire.NewMessage("urn:dd", "send")
		arr := m.AddDoubleArray("v", n)
		for i := 0; i < n; i++ {
			arr.Set(i, 1)
		}
		return m, arr
	}
	small, smallArr := build(10)
	big, bigArr := build(30)

	schema := &soapdec.Schema{Namespace: "urn:dd", Op: "send",
		Params: []soapdec.ParamSpec{{Name: "v", Type: wire.ArrayOf(wire.TDouble)}}}
	lookup := func(string) (*soapdec.Schema, bool) { return schema, true }

	sink := &captureSink{}
	cfg := core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}
	stubSmall := core.NewStub(cfg, sink)
	stubBig := core.NewStub(cfg, sink)
	d := New(lookup)

	render := func(stub *core.Stub, m *wire.Message) []byte {
		t.Helper()
		if _, err := stub.Call(m); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), sink.data...)
	}

	// Warm both shapes (two full parses).
	if _, info, err := d.Decode("k", render(stubSmall, small)); err != nil || !info.FullParse {
		t.Fatalf("warm small: %+v, %v", info, err)
	}
	if _, info, err := d.Decode("k", render(stubBig, big)); err != nil || !info.FullParse {
		t.Fatalf("warm big: %+v, %v", info, err)
	}
	if d.TemplateCount() != 2 {
		t.Fatalf("templates = %d", d.TemplateCount())
	}

	// Alternate with small updates: every decode is differential.
	for round := 0; round < 6; round++ {
		smallArr.Set(round%10, float64(round+2))
		msg, info, err := d.Decode("k", render(stubSmall, small))
		if err != nil || info.FullParse {
			t.Fatalf("round %d small: %+v, %v", round, info, err)
		}
		if msg.LeafDouble(round%10) != float64(round+2) {
			t.Fatalf("round %d small value lost", round)
		}
		bigArr.Set(round%30, float64(round+5))
		msg, info, err = d.Decode("k", render(stubBig, big))
		if err != nil || info.FullParse {
			t.Fatalf("round %d big: %+v, %v", round, info, err)
		}
		if msg.LeafDouble(round%30) != float64(round+5) {
			t.Fatalf("round %d big value lost", round)
		}
	}
	if d.TemplateCount() != 2 {
		t.Fatalf("templates grew to %d", d.TemplateCount())
	}
}

// TestFailedFastPathDoesNotPoisonTemplate reproduces the atomicity
// hazard: a same-length request whose early leaves parse but whose
// later region is corrupt must not leave stale values behind for the
// next fast-path hit.
func TestFailedFastPathDoesNotPoisonTemplate(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 4)
	for i := 0; i < 4; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	d := New(testSchema(m))
	if _, _, err := d.Decode("k", sink.data); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), sink.data...)

	// Same length, leaf 0 changed to "2", leaf 3's value corrupted to
	// unparseable text of the same length.
	evil := append([]byte(nil), clean...)
	replaceFirst(t, evil, []byte("<item>1"), []byte("<item>2"))
	idx := lastIndex(evil, []byte("<item>1"))
	copy(evil[idx:], []byte("<item>x"))
	if _, _, err := d.Decode("k", evil); err == nil {
		// A full-parse fallback also fails (x is unparseable); the
		// decode errors out, which is correct.
		t.Fatal("corrupt message decoded successfully")
	}

	// The original bytes must still fast-path to the original values.
	msg, info, err := d.Decode("k", clean)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullParse {
		t.Fatalf("clean resend fully parsed: %+v", info)
	}
	for i := 0; i < 4; i++ {
		if msg.LeafDouble(i) != 1 {
			t.Fatalf("leaf %d poisoned: %g", i, msg.LeafDouble(i))
		}
	}
}

func replaceFirst(t *testing.T, b, old, new []byte) {
	t.Helper()
	idx := bytes.Index(b, old)
	if idx < 0 {
		t.Fatalf("pattern %q not found", old)
	}
	copy(b[idx:], new)
}

func lastIndex(b, pat []byte) int {
	return bytes.LastIndex(b, pat)
}
