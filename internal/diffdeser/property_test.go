package diffdeser

import (
	"math"
	"math/rand"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/wire"
)

// TestRandomSequenceEquivalence is the deserializer's golden property:
// for random mutation/send sequences produced by a stuffing client, the
// differentially decoded message must always equal the sender's message
// — regardless of which decodes took the fast path.
func TestRandomSequenceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(60) + 1
		m := wire.NewMessage("urn:prop", "send")
		arr := m.AddDoubleArray("v", n)
		ints := m.AddIntArray("k", n)
		for i := 0; i < n; i++ {
			arr.Set(i, rng.Float64())
			ints.Set(i, int32(rng.Intn(1000)))
		}

		sink := &captureSink{}
		stub := core.NewStub(core.Config{
			Width: core.WidthPolicy{Double: core.MaxWidth, Int: core.MaxWidth},
		}, sink)
		d := New(testSchema(m))

		fastPathHits := 0
		for send := 0; send < 15; send++ {
			for k := rng.Intn(5); k > 0; k-- {
				if rng.Intn(2) == 0 {
					arr.Set(rng.Intn(n), randomDouble(rng))
				} else {
					ints.Set(rng.Intn(n), int32(rng.Uint32()))
				}
			}
			if _, err := stub.Call(m); err != nil {
				t.Fatal(err)
			}
			got, info, err := d.Decode("k", sink.data)
			if err != nil {
				t.Fatalf("trial %d send %d: %v", trial, send, err)
			}
			if !info.FullParse {
				fastPathHits++
			}
			for i := 0; i < m.NumLeaves(); i++ {
				switch m.LeafType(i).Kind {
				case wire.Double:
					gv, wv := got.LeafDouble(i), m.LeafDouble(i)
					if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
						t.Fatalf("trial %d send %d leaf %d: %g != %g", trial, send, i, gv, wv)
					}
				case wire.Int:
					if got.LeafInt(i) != m.LeafInt(i) {
						t.Fatalf("trial %d send %d leaf %d: %d != %d",
							trial, send, i, got.LeafInt(i), m.LeafInt(i))
					}
				}
			}
		}
		if fastPathHits == 0 {
			t.Fatalf("trial %d: stuffed client never hit the fast path", trial)
		}
	}
}

// randomDouble mixes widths and specials.
func randomDouble(rng *rand.Rand) float64 {
	switch rng.Intn(4) {
	case 0:
		return float64(rng.Intn(10))
	case 1:
		return -math.MaxFloat64
	case 2:
		return math.Inf(1)
	default:
		return rng.NormFloat64() * 1e10
	}
}
