package diffdeser

import (
	"net"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

// stuffedClient builds a bSOAP stub with max-width stuffing so repeated
// sends keep a constant message length — the shape differential
// deserialization exploits.
type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

func testSchema(m *wire.Message) soapdec.Lookup {
	s := &soapdec.Schema{Namespace: m.Namespace(), Op: m.Operation()}
	for _, p := range m.Params() {
		s.Params = append(s.Params, soapdec.ParamSpec{Name: p.Name, Type: p.Type})
	}
	return func(op string) (*soapdec.Schema, bool) {
		if op == s.Op {
			return s, true
		}
		return nil, false
	}
}

func TestFirstDecodeIsFullParse(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 10)
	for i := 0; i < 10; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	d := New(testSchema(m))
	msg, info, err := d.Decode("send", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if !info.FullParse {
		t.Fatal("first decode must be a full parse")
	}
	if msg.LeafDouble(3) != 3 {
		t.Fatalf("leaf 3 = %g", msg.LeafDouble(3))
	}
	if d.TemplateCount() != 1 {
		t.Fatalf("templates = %d", d.TemplateCount())
	}
}

func TestIdenticalResendSkipsParsing(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 50)
	for i := 0; i < 50; i++ {
		arr.Set(i, float64(i)+0.5)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("send", sink.data)

	stub.Call(m) // content match: identical bytes
	msg, info, err := d.Decode("send", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullParse || info.ValuesReparsed != 0 {
		t.Fatalf("identical resend: %+v", info)
	}
	if msg.LeafDouble(10) != 10.5 {
		t.Fatalf("leaf 10 = %g", msg.LeafDouble(10))
	}
}

func TestChangedValuesReparsedLocally(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 50)
	for i := 0; i < 50; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("send", sink.data)

	arr.Set(7, 777.25)
	arr.Set(31, -0.125)
	stub.Call(m)
	msg, info, err := d.Decode("send", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullParse {
		t.Fatalf("structural repeat fully parsed: %+v", info)
	}
	if info.ValuesReparsed != 2 {
		t.Fatalf("reparsed %d values, want 2", info.ValuesReparsed)
	}
	if msg.LeafDouble(7) != 777.25 || msg.LeafDouble(31) != -0.125 {
		t.Fatalf("values: %g %g", msg.LeafDouble(7), msg.LeafDouble(31))
	}
	if msg.LeafDouble(8) != 8 {
		t.Fatalf("untouched value corrupted: %g", msg.LeafDouble(8))
	}

	// The adopted bytes become the new template: re-sending the same
	// message is again a zero-reparse decode.
	stub.Call(m)
	_, info, err = d.Decode("send", sink.data)
	if err != nil || info.FullParse || info.ValuesReparsed != 0 {
		t.Fatalf("third decode: %+v, %v", info, err)
	}
}

func TestMIOFieldsReparse(t *testing.T) {
	mio := wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
	m := wire.NewMessage("urn:dd", "mios")
	arr := m.AddStructArray("m", mio, 20)
	for i := 0; i < 20; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetDouble(i, 2, 1.5)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{
		Width: core.WidthPolicy{Double: core.MaxWidth, Int: core.MaxWidth},
	}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("mios", sink.data)

	arr.SetDouble(4, 2, 99.75)
	arr.SetInt(9, 1, -12345)
	stub.Call(m)
	msg, info, err := d.Decode("mios", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullParse || info.ValuesReparsed != 2 {
		t.Fatalf("info: %+v", info)
	}
	r := msg
	if r.LeafDouble(4*3+2) != 99.75 {
		t.Fatalf("double field = %g", r.LeafDouble(4*3+2))
	}
	if r.LeafInt(9*3+1) != -12345 {
		t.Fatalf("int field = %d", r.LeafInt(9*3+1))
	}
}

func TestLengthChangeFallsBackToFullParse(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 10)
	sink := &captureSink{}
	// Exact widths: value growth changes the message length.
	stub := core.NewStub(core.Config{}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("send", sink.data)

	arr.Set(0, 123.456)
	stub.Call(m)
	_, info, err := d.Decode("send", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if !info.FullParse || info.Reason != "length mismatch" {
		t.Fatalf("info: %+v", info)
	}
}

func TestStringLeafReparse(t *testing.T) {
	m := wire.NewMessage("urn:dd", "names")
	s := m.AddString("who", "aaaa<b>&")
	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("names", sink.data)

	// Same escaped length, different content.
	s.Set("cccc<d>&")
	stub.Call(m)
	msg, info, err := d.Decode("names", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if info.FullParse || info.ValuesReparsed != 1 {
		t.Fatalf("info: %+v", info)
	}
	if msg.LeafString(0) != "cccc<d>&" {
		t.Fatalf("string = %q", msg.LeafString(0))
	}
}

func TestMarkupTamperFallsBack(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 5)
	for i := 0; i < 5; i++ {
		arr.Set(i, 1.5)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("send", sink.data)

	// Same length, but markup bytes differ: corrupt an open tag.
	tampered := append([]byte(nil), sink.data...)
	copyAt(tampered, "<itex>", indexOf(tampered, "<item>"))
	_, info, err := d.Decode("send", tampered)
	// Either a full-parse fallback error (bad tag) or a parse error is
	// acceptable — never a silent fast-path success.
	if err == nil && !info.FullParse {
		t.Fatalf("tampered markup served from fast path: %+v", info)
	}
}

func indexOf(b []byte, s string) int {
	for i := 0; i+len(s) <= len(b); i++ {
		if string(b[i:i+len(s)]) == s {
			return i
		}
	}
	return -1
}

func copyAt(b []byte, s string, at int) {
	copy(b[at:], s)
}

func TestSeparateKeysKeepSeparateTemplates(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 5)
	for i := 0; i < 5; i++ {
		arr.Set(i, 1.5)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	stub.Call(m)
	d := New(testSchema(m))
	d.Decode("clientA", sink.data)
	_, info, err := d.Decode("clientB", sink.data)
	if err != nil {
		t.Fatal(err)
	}
	if !info.FullParse {
		t.Fatal("new key served from another key's template")
	}
	if d.TemplateCount() != 2 {
		t.Fatalf("templates = %d", d.TemplateCount())
	}
}

// TestKeyCountLRUBound proves the deserializer cannot grow without
// bound in the number of operation keys: beyond maxKeys the least
// recently used key is evicted (templates and all), and a recently
// touched key survives.
func TestKeyCountLRUBound(t *testing.T) {
	m := wire.NewMessage("urn:dd", "send")
	arr := m.AddDoubleArray("v", 5)
	for i := 0; i < 5; i++ {
		arr.Set(i, 2.5)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	body := sink.data

	d := NewBounded(testSchema(m), 3)
	for _, key := range []string{"k1", "k2", "k3"} {
		if _, _, err := d.Decode(key, body); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 becomes the LRU tail.
	if _, info, err := d.Decode("k1", body); err != nil || info.FullParse {
		t.Fatalf("k1 re-decode: info=%+v err=%v", info, err)
	}
	// A fourth key must evict k2, not k1.
	if _, _, err := d.Decode("k4", body); err != nil {
		t.Fatal(err)
	}
	if d.KeyCount() != 3 {
		t.Fatalf("keys = %d, want 3", d.KeyCount())
	}
	if d.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", d.Evictions())
	}
	if _, info, err := d.Decode("k1", body); err != nil || info.FullParse {
		t.Fatalf("k1 evicted despite recent use: info=%+v err=%v", info, err)
	}
	if _, info, err := d.Decode("k2", body); err != nil || !info.FullParse {
		t.Fatalf("k2 should have been evicted: info=%+v err=%v", info, err)
	}
}
