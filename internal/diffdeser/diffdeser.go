// Package diffdeser implements differential deserialization, the
// server-side mirror of bSOAP proposed in the paper's future work (§6):
// storing messages at the SOAP server suggests the structure of future
// arrivals, letting the server avoid complete parsing.
//
// The deserializer keeps, per operation, the raw bytes and parse result
// of the last message, plus each scalar leaf's variable byte region
// (value + floating closing tag + padding, recorded by soapdec). A new
// message of identical length is diffed region by region: static regions
// (all markup) must match byte-for-byte; changed leaf regions are
// re-lexed locally — a handful of bytes — instead of re-running the full
// parser. Any mismatch falls back to a full parse that also refreshes
// the template.
package diffdeser

import (
	"bytes"
	"fmt"

	"bsoap/internal/replica"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Info reports how one Decode was served.
type Info struct {
	// FullParse is set when the whole envelope was parsed.
	FullParse bool
	// ValuesReparsed counts leaf regions re-lexed on the fast path.
	ValuesReparsed int
	// Reason explains why a full parse happened ("" on the fast path).
	Reason string
}

// template is the stored last message for one operation.
type template struct {
	body   []byte
	msg    *wire.Message
	ranges []soapdec.LeafRange
}

// MaxTemplatesPerKey bounds how many structurally distinct message
// templates are retained per key — the server-side analogue of the
// paper's "multiple templates per remote service" future work, letting
// a client that alternates between a few message shapes keep hitting
// the fast path.
const MaxTemplatesPerKey = 4

// DefaultMaxKeys bounds how many distinct operation keys a deserializer
// retains (each holding up to MaxTemplatesPerKey templates). Keys are
// evicted least-recently-used, mirroring core.Store's per-op signature
// LRU, so a peer cycling through many operations cannot grow the
// deserializer without bound.
const DefaultMaxKeys = 64

// Deserializer is the stateful server-side decoder. Not safe for
// concurrent use; guard it per connection or with the server's dispatch
// lock.
type Deserializer struct {
	lookup    soapdec.Lookup
	keys      *replica.LRU[string, *keyTemplates] // the tree's one LRU
	maxKeys   int
	evictions int64
	size      int64 // resident bytes, maintained incrementally
}

// keyTemplates is one operation key's template list, LRU front first.
type keyTemplates struct {
	list []*template
}

// New returns a deserializer resolving operations through lookup, with
// the key count bounded at DefaultMaxKeys.
func New(lookup soapdec.Lookup) *Deserializer {
	return NewBounded(lookup, DefaultMaxKeys)
}

// NewBounded returns a deserializer retaining at most maxKeys operation
// keys (values < 1 mean DefaultMaxKeys).
func NewBounded(lookup soapdec.Lookup, maxKeys int) *Deserializer {
	if maxKeys < 1 {
		maxKeys = DefaultMaxKeys
	}
	return &Deserializer{
		lookup:  lookup,
		keys:    replica.NewLRU[string, *keyTemplates](),
		maxKeys: maxKeys,
	}
}

// Evictions reports how many operation keys the LRU bound has evicted.
func (d *Deserializer) Evictions() int64 { return d.evictions }

// SizeBytes reports the deserializer's resident cost: stored message
// bodies plus a fixed estimate per template for the parsed message and
// its leaf ranges. Maintained incrementally, so reading it is free —
// the server runtime feeds it to the replica registry's byte budget.
func (d *Deserializer) SizeBytes() int { return int(d.size) }

// templateCost estimates one template's resident bytes: the body copy,
// the parsed message's leaf storage, and the range table.
func templateCost(t *template) int64 {
	const perRange = 16 // two ints per soapdec.LeafRange
	const fixed = 256   // template struct, message header
	return int64(cap(t.body)) + int64(len(t.ranges))*perRange + fixed
}

// noteKey moves key to the front of the key LRU, inserting it when new
// and evicting the least recently used key (and its templates) beyond
// maxKeys.
func (d *Deserializer) noteKey(key string, kt *keyTemplates) {
	if _, ok := d.keys.Get(key); ok {
		return
	}
	d.keys.PushFront(key, kt)
	if d.keys.Len() > d.maxKeys {
		if _, victim, ok := d.keys.RemoveTail(); ok {
			for _, t := range victim.list {
				d.size -= templateCost(t)
			}
			d.evictions++
		}
	}
}

// Decode parses body, differentially when a previous message for key
// had identical framing. The returned message is owned by the
// deserializer and valid until the next Decode with the same key.
func (d *Deserializer) Decode(key string, body []byte) (*wire.Message, Info, error) {
	kt, ok := d.keys.Peek(key)
	if !ok || len(kt.list) == 0 {
		return d.fullParse(key, body, "no template")
	}
	reason := "length mismatch"
	for idx, tpl := range kt.list {
		if len(body) != len(tpl.body) {
			continue
		}
		msg, info, ok, why := d.tryFast(tpl, body)
		if !ok {
			reason = why
			continue
		}
		// Move the hit to the LRU front (template within the key, and
		// the key within the deserializer).
		if idx != 0 {
			copy(kt.list[1:idx+1], kt.list[0:idx])
			kt.list[0] = tpl
		}
		d.keys.Touch(key)
		return msg, info, nil
	}
	return d.fullParse(key, body, reason)
}

// tryFast attempts the differential decode of body against one
// template: static regions must match byte-for-byte, changed leaf
// regions are re-lexed in place.
func (d *Deserializer) tryFast(tpl *template, body []byte) (*wire.Message, Info, bool, string) {
	info := Info{}
	prev := 0
	// First verify all static regions; only then mutate the message, so
	// a mismatching template is left untouched for other candidates.
	for _, r := range tpl.ranges {
		if !bytes.Equal(body[prev:r.Start], tpl.body[prev:r.Start]) {
			return nil, info, false, "markup changed"
		}
		prev = r.End
	}
	if !bytes.Equal(body[prev:], tpl.body[prev:]) {
		return nil, info, false, "trailing markup changed"
	}
	// Validate and parse every changed region before mutating anything:
	// a failure mid-way must leave the template (message and bytes)
	// exactly as it was, or a later fast-path hit against the unchanged
	// tpl.body baseline would serve stale values.
	type update struct {
		leaf  int
		value any
	}
	var updates []update
	for i, r := range tpl.ranges {
		if bytes.Equal(body[r.Start:r.End], tpl.body[r.Start:r.End]) {
			continue
		}
		v, err := relexRegion(tpl.msg, i, body[r.Start:r.End])
		if err != nil {
			return nil, info, false, err.Error()
		}
		updates = append(updates, update{leaf: i, value: v})
	}
	for _, u := range updates {
		switch tpl.msg.LeafType(u.leaf).Kind {
		case wire.Int:
			tpl.msg.SetLeafInt(u.leaf, u.value.(int32))
		case wire.Double:
			tpl.msg.SetLeafDouble(u.leaf, u.value.(float64))
		case wire.Bool:
			tpl.msg.SetLeafBool(u.leaf, u.value.(bool))
		case wire.String:
			tpl.msg.SetLeafString(u.leaf, u.value.(string))
		}
		info.ValuesReparsed++
	}
	// Adopt the new bytes as the template for the next arrival.
	tpl.body = append(tpl.body[:0], body...)
	return tpl.msg, info, true, ""
}

// relexRegion re-parses one variable region: VALUE</tag>␣␣… — the value
// text up to the first '<', the expected closing tag, then whitespace —
// and returns the parsed value without mutating the message.
func relexRegion(msg *wire.Message, leaf int, seg []byte) (any, error) {
	lt := bytes.IndexByte(seg, '<')
	if lt < 0 {
		return nil, fmt.Errorf("leaf %d: no closing tag in region", leaf)
	}
	rest := seg[lt:]
	closeTag := "</" + msg.LeafTag(leaf) + ">"
	if len(rest) < len(closeTag) || string(rest[:len(closeTag)]) != closeTag {
		return nil, fmt.Errorf("leaf %d: closing tag changed", leaf)
	}
	for _, b := range rest[len(closeTag):] {
		if !xsdlex.IsSpace(b) {
			return nil, fmt.Errorf("leaf %d: non-whitespace padding", leaf)
		}
	}
	raw := string(seg[:lt])
	t := msg.LeafType(leaf)
	if t.Kind == wire.String {
		unescaped, err := xsdlex.UnescapeText(raw)
		if err != nil {
			return nil, fmt.Errorf("leaf %d: %w", leaf, err)
		}
		return unescaped, nil
	}
	v, err := soapdec.ParseScalar(t, raw)
	if err != nil {
		return nil, fmt.Errorf("leaf %d: %w", leaf, err)
	}
	return v, nil
}

// fullParse runs the complete schema-driven parse and refreshes the
// template for key.
func (d *Deserializer) fullParse(key string, body []byte, reason string) (*wire.Message, Info, error) {
	res, err := soapdec.Decode(body, d.lookup, true)
	if err != nil {
		return nil, Info{FullParse: true, Reason: reason}, err
	}
	tpl := &template{
		body:   append([]byte(nil), body...),
		msg:    res.Msg,
		ranges: res.Ranges,
	}
	kt, ok := d.keys.Peek(key)
	if !ok {
		kt = &keyTemplates{}
	}
	kt.list = append([]*template{tpl}, kt.list...)
	d.size += templateCost(tpl)
	if len(kt.list) > MaxTemplatesPerKey {
		for _, dropped := range kt.list[MaxTemplatesPerKey:] {
			d.size -= templateCost(dropped)
		}
		kt.list = kt.list[:MaxTemplatesPerKey]
	}
	d.noteKey(key, kt)
	return res.Msg, Info{FullParse: true, Reason: reason}, nil
}

// KeyCount reports how many operation keys are resident.
func (d *Deserializer) KeyCount() int { return d.keys.Len() }

// TemplateCount reports how many templates are resident (all keys).
func (d *Deserializer) TemplateCount() int {
	n := 0
	d.keys.FromFront(func(_ string, kt *keyTemplates) bool {
		n += len(kt.list)
		return true
	})
	return n
}
