package core

import (
	"net"
	"testing"

	"bsoap/internal/wire"
)

// stealStub builds a stub with stuffed 10-char double fields and
// stealing enabled over a capture sink.
func stealStub(t *testing.T, n int) (*Stub, *captureSink, *wire.Message, wire.DoubleArrayRef) {
	t.Helper()
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", n)
	for i := 0; i < n; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	s := NewStub(Config{Width: WidthPolicy{Double: 10}, EnableStealing: true}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	return s, sink, m, arr
}

func TestStealFromLeftNeighbour(t *testing.T) {
	s, sink, m, arr := stealStub(t, 4)
	// Exhaust the padding of every entry to the RIGHT of index 3 (none
	// exist), so growing the last element must steal from the left.
	arr.Set(3, 1.234567890123) // 15 chars into a 10-char field
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Steals != 1 || ci.Shifts != 0 {
		t.Fatalf("expected a left steal, got %+v", ci)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
}

func TestStealPrefersRightThenLeft(t *testing.T) {
	s, sink, m, arr := stealStub(t, 5)
	// First expansion of element 2 steals from element 3 (right).
	arr.Set(2, 1.234567890123)
	ci, err := s.Call(m)
	if err != nil || ci.Steals != 1 {
		t.Fatalf("first steal: %+v, %v", ci, err)
	}
	// "1.234567890123" is 14 chars: deficit 4 against the 10-char field,
	// taken from element 3's padding (9 → 5).
	tpl := s.Template(m.Operation(), m.Signature())
	if tpl.Table().At(3).Pad() != 5 {
		t.Fatalf("right neighbour pad = %d, want 5", tpl.Table().At(3).Pad())
	}
	checkRendered(t, m, sink.data)

	// Element 3's pad is now too small; growing element 3 itself must
	// look further right (element 4) and still steal, not shift.
	arr.Set(3, 1.234567890123)
	ci, err = s.Call(m)
	if err != nil || ci.Steals != 1 || ci.Shifts != 0 {
		t.Fatalf("second steal: %+v, %v", ci, err)
	}
	checkRendered(t, m, sink.data)

	// Element 4 donated already (width now 2); elements 3 and 2 are
	// full. Growing element 4 to a 10-char value (deficit 8) must steal
	// LEFT from element 1, which still has its full 9-char padding.
	arr.Set(4, 1.23456789)
	ci, err = s.Call(m)
	if err != nil || ci.Steals != 1 || ci.Shifts != 0 {
		t.Fatalf("left steal: %+v, %v", ci, err)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
}

func TestStealExhaustionFallsBackToShift(t *testing.T) {
	s, sink, m, arr := stealStub(t, 3)
	// Consume everyone's padding.
	for i := 0; i < 3; i++ {
		arr.Set(i, 1.234567890123) // 15 chars each; total pad is 3×9=27, each grow takes 5
	}
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
	// Now no entry has ≥6 spare chars; the next growth must shift.
	arr.Set(1, -1.7976931348623157e+308) // 24 chars
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != 1 {
		t.Fatalf("expected shift fallback after pad exhaustion, got %+v", ci)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
}

func TestStealScanLimitRespected(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 12)
	for i := 0; i < 12; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	// Widths: first/last elements have pad, middle band none. Scan
	// limit 2 cannot reach a donor from the centre.
	s := NewStub(Config{Width: WidthPolicy{Double: 10}, EnableStealing: true, StealScan: 2}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	// Drain pads of elements 3..9 by growing each to exactly 10 chars.
	for i := 3; i <= 9; i++ {
		arr.Set(i, 1.23456789) // 10 chars: fills the field, no expansion
	}
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	// Element 6 grows; donors (0..2, 10..11) are beyond scan distance 2.
	arr.Set(6, 1.234567890123)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Steals != 0 || ci.Shifts != 1 {
		t.Fatalf("scan limit ignored: %+v", ci)
	}
	checkRendered(t, m, sink.data)
}

// pipeSink exercises the pipelined writer against a slow consumer and
// records what arrives.
type pipeSink struct {
	data   []byte
	chunks int
	failAt int
}

func (p *pipeSink) BeginStream() error { p.data = p.data[:0]; p.chunks = 0; return nil }
func (p *pipeSink) StreamChunk(b []byte) error {
	p.chunks++
	if p.failAt != 0 && p.chunks == p.failAt {
		return net.ErrClosed
	}
	p.data = append(p.data, b...)
	return nil
}
func (p *pipeSink) EndStream() error { return nil }

func TestPipelinedOverlayMatchesSequential(t *testing.T) {
	build := func() *wire.Message {
		m := wire.NewMessage("urn:t", "big")
		arr := m.AddDoubleArray("v", 900)
		for i := 0; i < 900; i++ {
			arr.Set(i, float64(i)+0.5)
		}
		return m
	}
	cfg := overlayConfig()

	seq := &captureStream{}
	sSeq := NewStub(cfg, seq)
	if _, err := sSeq.CallOverlay(build(), seq); err != nil {
		t.Fatal(err)
	}

	pip := &pipeSink{}
	sPip := NewStub(cfg, &captureSink{})
	ci, err := sPip.CallOverlayPipelined(build(), pip)
	if err != nil {
		t.Fatal(err)
	}
	if string(pip.data) != string(seq.data) {
		t.Fatalf("pipelined bytes diverge: %d vs %d", len(pip.data), len(seq.data))
	}
	if ci.Bytes != len(pip.data) {
		t.Fatalf("ci.Bytes = %d, sink got %d", ci.Bytes, len(pip.data))
	}
}

func TestPipelinedOverlayRepeatSends(t *testing.T) {
	m := wire.NewMessage("urn:t", "big")
	arr := m.AddDoubleArray("v", 500)
	for i := 0; i < 500; i++ {
		arr.Set(i, 1)
	}
	pip := &pipeSink{}
	s := NewStub(overlayConfig(), &captureSink{})
	for round := 0; round < 4; round++ {
		for i := 0; i < 500; i++ {
			arr.Set(i, float64(i+round))
		}
		if _, err := s.CallOverlayPipelined(m, pip); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkRendered(t, m, pip.data)
	}
}

func TestPipelinedOverlayWriterError(t *testing.T) {
	m := wire.NewMessage("urn:t", "big")
	arr := m.AddDoubleArray("v", 2000)
	for i := 0; i < 2000; i++ {
		arr.Set(i, 1)
	}
	pip := &pipeSink{failAt: 3}
	s := NewStub(overlayConfig(), &captureSink{})
	if _, err := s.CallOverlayPipelined(m, pip); err == nil {
		t.Fatal("writer error not propagated")
	}
}

func TestPipelinedOverlayUnsupportedShape(t *testing.T) {
	m := wire.NewMessage("urn:t", "op")
	m.AddInt("x", 1)
	s := NewStub(overlayConfig(), &captureSink{})
	if _, err := s.CallOverlayPipelined(m, &pipeSink{}); err == nil {
		t.Fatal("unsupported shape accepted")
	}
}
