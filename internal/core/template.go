package core

import (
	"fmt"
	"sync/atomic"

	"bsoap/internal/chunk"
	"bsoap/internal/dut"
	"bsoap/internal/fastconv"
	"bsoap/internal/soapenv"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Template is a saved serialized message: the chunked bytes of the last
// send plus the DUT table pointing into them. It stays bound to the
// message object whose dirty bits it trusts; a structurally identical but
// distinct message rebinds with every value treated as dirty.
type Template struct {
	sig     string
	msg     *wire.Message
	version int

	buf *chunk.Buffer
	tab dut.Table
	cfg Config

	// suspect marks a template whose most recent send failed: the peer
	// may hold a half-delivered copy and the repaired connection must not
	// be trusted with incremental state. The next call of this structure
	// discards the template and re-serializes from the live values (a
	// degraded first-time send) instead of diffing against it.
	suspect bool

	// deltaID is the template's process-unique identity on the delta
	// wire (a suspect-discarded template is rebuilt under a fresh id,
	// so stale peer state can never match it); deltaEpoch is the
	// template's content version, bumped whenever its bytes change.
	// The epoch is a fast synchronization filter; the patch frame's
	// checksum is the correctness authority.
	deltaID    uint64
	deltaEpoch uint64

	// tags caches "<name>"/"</name>" pairs so emission does not
	// concatenate per leaf.
	tags map[string][2]string
}

// tagPair returns the cached open/close tags for name.
func (t *Template) tagPair(name string) (string, string) {
	if p, ok := t.tags[name]; ok {
		return p[0], p[1]
	}
	p := [2]string{"<" + name + ">", "</" + name + ">"}
	t.tags[name] = p
	return p[0], p[1]
}

// Buffer exposes the template's chunk buffer (transports and tests).
func (t *Template) Buffer() *chunk.Buffer { return t.buf }

// Table exposes the DUT table (tests and the inspector tool).
func (t *Template) Table() *dut.Table { return &t.tab }

// Signature returns the structural signature the template was built for.
func (t *Template) Signature() string { return t.sig }

// Suspect reports whether the template's last send failed mid-flight
// (the next call of this structure will degrade to a fresh first-time
// serialization). Exposed for the /debug/templates view and tests.
func (t *Template) Suspect() bool { return t.suspect }

// Bytes returns a contiguous copy of the serialized message.
func (t *Template) Bytes() []byte { return t.buf.Bytes() }

// DeltaID returns the template's process-unique delta-wire identity.
func (t *Template) DeltaID() uint64 { return t.deltaID }

// DeltaEpoch returns the template's current content version.
func (t *Template) DeltaEpoch() uint64 { return t.deltaEpoch }

// MemoryFootprint estimates the template's resident cost in bytes:
// chunk capacity plus the DUT table — the storage the paper's §3.3
// identifies as differential serialization's price, and what chunk
// overlaying bounds to a single chunk.
func (t *Template) MemoryFootprint() int {
	const entrySize = 64 // approximate per-entry size of dut.Entry
	return t.buf.Footprint() + t.tab.Len()*entrySize
}

// encodeLeaf renders leaf i's lexical form into scratch (which must have
// capacity ≥ MaxDoubleWidth for numeric kinds); strings may allocate.
func encodeLeaf(m *wire.Message, i int, typ *wire.Type, scratch []byte) []byte {
	switch typ.Kind {
	case wire.Int:
		n := fastconv.WriteInt(scratch, m.LeafInt(i))
		return scratch[:n]
	case wire.Double:
		n := fastconv.WriteDouble(scratch, m.LeafDouble(i))
		return scratch[:n]
	case wire.Bool:
		n := fastconv.WriteBool(scratch, m.LeafBool(i))
		return scratch[:n]
	case wire.String:
		return xsdlex.EscapeText(scratch[:0], m.LeafString(i))
	}
	panic("core: encodeLeaf of non-scalar " + typ.Name)
}

// release returns the template's chunk arenas to the pool. Only the
// template store calls this, on eviction or suspect removal, under the
// same external synchronization as the Calls using the template — so
// nothing released can still be mid-send.
func (t *Template) release() {
	t.buf.Release()
}

// nextDeltaID allocates process-unique template identities for the
// delta wire. Starting at 1 keeps 0 free as "no template".
var nextDeltaID atomic.Uint64

// newTemplate fully serializes m and records the DUT table — the
// paper's First-Time Send.
func newTemplate(m *wire.Message, cfg Config, sc *scratch) *Template {
	t := &Template{
		sig:     m.Signature(),
		msg:     m,
		version: m.Version(),
		buf:     chunk.New(cfg.Chunk),
		cfg:     cfg,
		tags:    make(map[string][2]string, 8),
		deltaID: nextDeltaID.Add(1),
	}
	t.buf.Span = sc.span
	t.buf.AppendString(soapenv.EnvelopeStart(m.Namespace()))
	t.buf.AppendString(soapenv.OperationStart(m.Operation()))
	leaf := 0
	for _, p := range m.Params() {
		leaf = t.emitParam(m, &p, leaf, sc)
	}
	t.buf.AppendString(soapenv.OperationEnd(m.Operation()))
	t.buf.AppendString(soapenv.EnvelopeEnd)
	if leaf != m.NumLeaves() {
		panic(fmt.Sprintf("core: emitted %d leaves, message has %d", leaf, m.NumLeaves()))
	}
	return t
}

// emitParam serializes one parameter starting at leaf index `leaf` and
// returns the next leaf index.
func (t *Template) emitParam(m *wire.Message, p *wire.Param, leaf int, sc *scratch) int {
	switch p.Type.Kind {
	case wire.Array:
		t.buf.AppendString(soapenv.ArrayStart(p.Name, p.Type.Elem, p.Count))
		for i := 0; i < p.Count; i++ {
			leaf = t.emitValue(m, p.Type.Elem, soapenv.ItemTag, leaf, sc)
		}
		t.buf.AppendString(soapenv.ArrayEnd(p.Name))
	case wire.Struct:
		t.buf.AppendString(soapenv.StructStart(p.Name, p.Type))
		for _, f := range p.Type.Fields {
			leaf = t.emitValue(m, f.Type, f.Name, leaf, sc)
		}
		t.buf.AppendString(soapenv.CloseTag(p.Name))
	default:
		open := soapenv.ScalarStart(p.Name, p.Type)
		leaf = t.emitScalar(m, p.Type, open, soapenv.CloseTag(p.Name), leaf, sc)
	}
	return leaf
}

// emitValue serializes one value of type typ wrapped in <tag>…</tag>.
func (t *Template) emitValue(m *wire.Message, typ *wire.Type, tag string, leaf int, sc *scratch) int {
	if typ.Kind == wire.Struct {
		open, cls := t.tagPair(tag)
		t.buf.AppendString(open)
		for _, f := range typ.Fields {
			leaf = t.emitValue(m, f.Type, f.Name, leaf, sc)
		}
		t.buf.AppendString(cls)
		return leaf
	}
	open, cls := t.tagPair(tag)
	return t.emitScalar(m, typ, open, cls, leaf, sc)
}

// emitScalar serializes one scalar leaf with the configured stuffing and
// records its DUT entry.
func (t *Template) emitScalar(m *wire.Message, typ *wire.Type, open, cls string, leaf int, sc *scratch) int {
	t.buf.AppendString(open)
	enc := sc.encode(m, leaf, typ)
	width := t.cfg.Width.widthFor(typ, len(enc))
	span := width + len(cls)
	pos := t.buf.Reserve(span)
	b := pos.C.Bytes()
	copy(b[pos.Off:], enc)
	copy(b[pos.Off+len(enc):], cls)
	fastconv.Pad(b, pos.Off+len(enc)+len(cls), pos.Off+span)
	t.tab.Append(dut.Entry{
		Type:     typ,
		Chunk:    pos.C,
		Off:      pos.Off,
		SerLen:   len(enc),
		Width:    width,
		CloseTag: cls,
	})
	return leaf + 1
}

// applyDiff re-serializes exactly the dirty leaves of m into the
// template, expanding fields as needed, and updates ci.
func (t *Template) applyDiff(m *wire.Message, ci *CallInfo, sc *scratch) {
	t.buf.Span = sc.span // attribute chunk grow/split events to this call
	n := t.tab.Len()
	for i := 0; i < n; i++ {
		if !m.Dirty(i) {
			continue
		}
		t.rewriteLeaf(m, i, sc, ci)
	}
}

// rewriteLeaf writes leaf i's current value into its template field.
func (t *Template) rewriteLeaf(m *wire.Message, i int, sc *scratch, ci *CallInfo) {
	e := t.tab.At(i)
	enc := sc.encode(m, i, e.Type)
	if sc.span != 0 {
		trace.Rec(sc.span, trace.KindRewrite, int64(i), int64(e.SerLen), int64(len(enc)))
	}
	if len(enc) > e.Width {
		// Partial structural match: the field must be expanded.
		deficit := len(enc) - e.Width
		donor, stolen := -1, false
		if t.cfg.EnableStealing {
			donor, stolen = t.trySteal(i, deficit)
		}
		if stolen {
			ci.Steals++
			if sc.span != 0 {
				trace.Rec(sc.span, trace.KindSteal, int64(i), int64(deficit), int64(donor))
			}
		} else {
			t.shiftGrow(i, deficit, ci, sc)
			ci.Shifts++
		}
		e = t.tab.At(i) // the entry's chunk may have changed
	}
	b := e.Chunk.Bytes()
	copy(b[e.Off:], enc)
	if len(enc) != e.SerLen {
		// Closing-tag shift: rewrite the tag right after the value and
		// pad the remainder of the field with whitespace (paper §3.2).
		copy(b[e.Off+len(enc):], e.CloseTag)
		fastconv.Pad(b, e.Off+len(enc)+len(e.CloseTag), e.SpanEnd())
		e.SerLen = len(enc)
		ci.TagShifts++
		if sc.span != 0 {
			trace.Rec(sc.span, trace.KindTagShift, int64(i), int64(len(enc)), int64(e.Width))
		}
	}
	ci.ValuesRewritten++
	ci.BytesSerialized += len(enc)
}

// shiftGrow expands entry i's field by deficit bytes using on-the-fly
// message expansion: consume the chunk's slack, grow the chunk up to the
// split threshold, or split the chunk and expand there (paper §3.2).
func (t *Template) shiftGrow(i, deficit int, ci *CallInfo, sc *scratch) {
	e := t.tab.At(i)
	c := e.Chunk
	pos := e.SpanEnd()

	if c.Slack() < deficit {
		if c.Len()+deficit <= t.buf.Config().SplitThreshold {
			t.buf.GrowChunk(c, deficit)
			ci.Grows++
		} else {
			// Split the chunk into two smaller chunks (paper §3.2),
			// peeling at the entry boundary nearest the middle — but
			// never inside this entry's span — so both halves, and all
			// future shifts within them, stay bounded by half the
			// threshold.
			at := pos
			if target := c.Len() / 2; target > pos {
				if off, ok := t.tab.FirstOffAtOrAfter(c, target); ok && off > pos {
					at = off
				}
			}
			nc := t.buf.SplitChunk(c, at)
			t.tab.FixupSplit(c, nc, at)
			ci.Splits++
			if c.Slack() < deficit {
				t.buf.GrowChunk(c, deficit)
				ci.Grows++
			}
		}
	}
	if sc.span != 0 {
		trace.Rec(sc.span, trace.KindShift, int64(i), int64(c.Len()-pos), int64(t.buf.Ordinal(c)))
	}
	if !c.InsertGap(pos, deficit) {
		panic("core: InsertGap failed after ensuring room")
	}
	t.tab.FixupShift(c, pos, deficit)
	e.Width += deficit
}

// trySteal serves a field expansion by taking padding from a nearby
// entry in the same chunk, moving only the bytes between the grower and
// the donor's padding instead of shifting the whole chunk tail
// (companion paper [4] explores this dynamic field resizing). Donors to
// the right are preferred — the move there excludes the grower's own
// bytes — then donors to the left. Returns the donor's entry index so
// the flight recorder can name it.
func (t *Template) trySteal(i, deficit int) (int, bool) {
	if j, ok := t.stealRight(i, deficit); ok {
		return j, true
	}
	return t.stealLeft(i, deficit)
}

// stealRight takes padding from a donor after the grower.
func (t *Template) stealRight(i, deficit int) (int, bool) {
	e := t.tab.At(i)
	c := e.Chunk
	limit := i + 1 + t.cfg.StealScan
	if limit > c.EntryHi {
		limit = c.EntryHi
	}
	for j := i + 1; j < limit; j++ {
		d := t.tab.At(j)
		if d.Pad() < deficit {
			continue
		}
		// Move [grower's span end, donor's pad start) right by deficit.
		src := e.SpanEnd()
		padStart := d.Off + d.SerLen + len(d.CloseTag)
		b := c.Bytes()
		copy(b[src+deficit:padStart+deficit], b[src:padStart])
		// Entries strictly between grower and donor, and the donor
		// itself, moved right; the donor's width shrinks by what it
		// donated, the grower's grows.
		for k := i + 1; k <= j; k++ {
			t.tab.At(k).Off += deficit
		}
		d.Width -= deficit
		e.Width += deficit
		return j, true
	}
	return 0, false
}

// stealLeft takes padding from a donor before the grower: the bytes
// from the donor's trimmed span end up to the grower's value start move
// left, and the grower's field opens toward lower offsets.
func (t *Template) stealLeft(i, deficit int) (int, bool) {
	e := t.tab.At(i)
	c := e.Chunk
	limit := i - t.cfg.StealScan
	if limit < c.EntryLo {
		limit = c.EntryLo
	}
	for j := i - 1; j >= limit; j-- {
		d := t.tab.At(j)
		if d.Pad() < deficit {
			continue
		}
		// Move [donor's span end, grower's value start) left by deficit,
		// consuming the tail of the donor's padding. The grower's open
		// tag travels with the moved region.
		src := d.SpanEnd()
		b := c.Bytes()
		copy(b[src-deficit:e.Off-deficit], b[src:e.Off])
		for k := j + 1; k <= i; k++ {
			t.tab.At(k).Off -= deficit
		}
		d.Width -= deficit
		e.Width += deficit
		return j, true
	}
	return 0, false
}
