package core

import (
	"testing"

	"bsoap/internal/wire"
)

// TestOverlayBoundsMemory verifies the paper's §3.3 claim numerically:
// the resident cost of chunk overlaying stays bounded by the chunk size
// while a full template grows with the message.
func TestOverlayBoundsMemory(t *testing.T) {
	const n = 100000
	cfg := overlayConfig() // 512-byte chunks, max-width stuffing

	build := func() *wire.Message {
		m := wire.NewMessage("urn:t", "big")
		arr := m.AddDoubleArray("v", n)
		for i := 0; i < n; i++ {
			arr.Set(i, float64(i))
		}
		return m
	}

	// Resident template.
	tmplStub := NewStub(cfg, &captureSink{})
	mT := build()
	if _, err := tmplStub.Call(mT); err != nil {
		t.Fatal(err)
	}
	tmplCost := tmplStub.Template(mT.Operation(), mT.Signature()).MemoryFootprint()

	// Overlay.
	ovStub := NewStub(cfg, &captureSink{})
	mO := build()
	sink := &captureStream{}
	if _, err := ovStub.CallOverlay(mO, sink); err != nil {
		t.Fatal(err)
	}
	ovCost := ovStub.OverlayFootprint(mO.Operation())

	if ovCost == 0 || tmplCost == 0 {
		t.Fatalf("footprints: overlay %d, template %d", ovCost, tmplCost)
	}
	// A 100K-double message at max width is several megabytes resident;
	// the overlay state holds head+tail+frame+one chunk's buffers.
	if tmplCost < 100*ovCost {
		t.Fatalf("overlay does not bound memory: template %d bytes, overlay %d bytes",
			tmplCost, ovCost)
	}
	t.Logf("template %d bytes resident vs overlay %d bytes (%.0fx reduction)",
		tmplCost, ovCost, float64(tmplCost)/float64(ovCost))
}

// TestFootprintGrowsWithMessage sanity-checks the accounting itself.
func TestFootprintGrowsWithMessage(t *testing.T) {
	cost := func(n int) int {
		m := wire.NewMessage("urn:t", "op")
		m.AddDoubleArray("v", n)
		s := NewStub(Config{}, &captureSink{})
		if _, err := s.Call(m); err != nil {
			t.Fatal(err)
		}
		return s.Template(m.Operation(), m.Signature()).MemoryFootprint()
	}
	small, large := cost(100), cost(10000)
	if large <= small {
		t.Fatalf("footprint not monotone: %d vs %d", small, large)
	}
}
