package core

import (
	"fmt"
	"net"
	"sync"

	"bsoap/internal/replica"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Store holds templates keyed by operation. Each Stub owns one by
// default; passing the same Store to several stubs shares templates
// across destinations, amortizing serialization across services that
// receive the same data (paper §6 future work). Recency within an
// operation is tracked by the tree's one LRU (internal/replica); a
// warm-path lookup allocates nothing.
//
// Concurrency guarantee: Store's own methods (lookup, insert,
// TemplateCount) are safe for concurrent use by multiple goroutines.
// That does NOT make concurrent Stub.Call through a shared Store safe:
// a Call mutates the looked-up Template's bytes and DUT table outside
// the Store's lock. Stubs sharing a Store must still be externally
// synchronized; internal/pool provides a sharded runtime that does this
// for many goroutines.
type Store struct {
	mu   sync.Mutex
	byOp map[string]*replica.LRU[string, *Template]
	cap  int
}

// NewStore returns an empty template store retaining at most perOp
// structurally distinct templates per operation (0 selects 4).
func NewStore(perOp int) *Store {
	if perOp <= 0 {
		perOp = 4
	}
	return &Store{byOp: make(map[string]*replica.LRU[string, *Template]), cap: perOp}
}

// lookup finds a template with the given structural signature, moving it
// to the front (LRU position) when found.
func (st *Store) lookup(op, sig string) *Template {
	st.mu.Lock()
	defer st.mu.Unlock()
	if l := st.byOp[op]; l != nil {
		if t, ok := l.Get(sig); ok {
			return t
		}
	}
	return nil
}

// remove deletes the template with the given signature, if present,
// returning its arenas to the pool (callers discard suspect templates;
// their bytes are no longer in flight once the failed send returned).
func (st *Store) remove(op, sig string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if l := st.byOp[op]; l != nil {
		if t, ok := l.Remove(sig); ok {
			t.release()
		}
	}
}

// insert records a new template at the LRU front, evicting the least
// recently used beyond capacity. Insertion happens only on first-time
// sends (which allocate a whole template anyway); warm calls never come
// here. An evicted template's chunk arenas go back to the pool (safe:
// insert runs under the same external synchronization as the Calls that
// use the templates, so nothing evicted can be mid-send).
func (st *Store) insert(op string, t *Template) {
	st.mu.Lock()
	defer st.mu.Unlock()
	l := st.byOp[op]
	if l == nil {
		l = replica.NewLRU[string, *Template]()
		st.byOp[op] = l
	}
	if l.Len() >= st.cap {
		if _, victim, ok := l.RemoveTail(); ok {
			victim.release()
		}
	}
	l.PushFront(t.sig, t)
}

// TemplateCount reports the number of stored templates (all operations).
func (st *Store) TemplateCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, l := range st.byOp {
		n += l.Len()
	}
	return n
}

// Footprint sums the MemoryFootprint of every stored template: the
// store's contribution to a pooled replica's budget accounting.
func (st *Store) Footprint() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, l := range st.byOp {
		l.FromFront(func(_ string, t *Template) bool {
			n += t.MemoryFootprint()
			return true
		})
	}
	return n
}

// EachTemplate visits every stored template, most recently used first
// within each operation (debug dumps, tests). The visit runs under the
// store lock and must not call back into the store.
func (st *Store) EachTemplate(visit func(op string, t *Template)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for op, l := range st.byOp {
		l.FromFront(func(_ string, t *Template) bool {
			visit(op, t)
			return true
		})
	}
}

// ReleaseAll returns every template's chunk arenas to the pool and
// empties the store. The unified replica registry calls this (through
// the pool entry's ReleaseArenas) once an evicted entry's last in-flight
// call has returned; a late MarkSuspect from a pipelined response simply
// misses its lookup afterwards.
func (st *Store) ReleaseAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for op, l := range st.byOp {
		for {
			_, t, ok := l.RemoveTail()
			if !ok {
				break
			}
			t.release()
		}
		delete(st.byOp, op)
	}
}

// Stub is a client-side SOAP endpoint employing differential
// serialization. It is not safe for concurrent use; create one stub per
// sending goroutine (they may share a Store only if externally
// synchronized).
type Stub struct {
	cfg      Config
	sink     Sink
	store    *Store
	stats    Stats
	overlays map[string]*overlayState
	flat     flatRenderer // DisableDiff reusable buffer
	scr      scratch      // per-stub send scratch, alive across calls
}

// scratch is the stub's reusable working memory: everything a warm send
// needs that is not part of the template itself. It is confined to the
// owning stub (one goroutine at a time — for pooled replicas, whoever
// holds the replica lock), so no locking is needed, and it is never
// released: a steady-state send reuses it wholesale and performs zero
// heap allocations.
type scratch struct {
	// bufs is the vectored-send header handed to Sink.Send, refilled
	// from the template's chunks each call (see Buffer.BuffersInto).
	bufs net.Buffers
	// enc holds one leaf's lexical form. It starts at the numeric
	// maximum width and grows to the longest string leaf seen, so
	// re-serializing strings stays allocation-free once warm.
	enc []byte
	// regs and delta are the differential-transmission working set:
	// the coalesced dirty regions of the call in progress and the
	// encoded frame/region headers (region payloads alias template
	// chunks and are never copied). Both converge on the largest call
	// seen and then stop allocating.
	regs  []deltaRegion
	delta []byte
	// span is the flight-recorder span of the call in progress: set by
	// the pool runtime (SetTraceSpan) or self-allocated at Call entry
	// when tracing is on, consumed (reset to zero) when the call's span
	// is closed. Zero whenever tracing is off, making every hook a plain
	// field test.
	span uint64
}

// encode renders leaf i's lexical form into the scratch buffer. The
// returned slice aliases the scratch and is valid until the next encode.
// When a string leaf escapes to more than the scratch holds, the grown
// buffer is kept: the scratch converges on the longest leaf seen and
// then stops allocating.
func (sc *scratch) encode(m *wire.Message, i int, typ *wire.Type) []byte {
	if cap(sc.enc) < xsdlex.MaxDoubleWidth {
		sc.enc = make([]byte, 0, xsdlex.MaxDoubleWidth)
	}
	out := encodeLeaf(m, i, typ, sc.enc[:cap(sc.enc)])
	if cap(out) > cap(sc.enc) {
		sc.enc = out
	}
	return out
}

// NewStub returns a stub sending through sink.
func NewStub(cfg Config, sink Sink) *Stub {
	c := cfg.withDefaults()
	return &Stub{cfg: c, sink: sink, store: NewStore(c.MaxTemplatesPerOp)}
}

// NewStubWithStore returns a stub using a shared template store.
func NewStubWithStore(cfg Config, sink Sink, store *Store) *Stub {
	return &Stub{cfg: cfg.withDefaults(), sink: sink, store: store}
}

// Stats returns cumulative counters.
func (s *Stub) Stats() Stats { return s.stats }

// SetTraceSpan hands the stub the flight-recorder span for the next
// Call, letting a runtime that owns the call lifecycle (internal/pool)
// stitch pool-level events (checkout, redial, retry) and core-level
// events (match, rewrite, shift) into one timeline. The span is consumed
// by the Call; without one, a traced Call allocates its own span id.
func (s *Stub) SetTraceSpan(span uint64) { s.scr.span = span }

// endSpan closes the in-progress call's trace span and resets it so it
// cannot leak into the next call.
func (s *Stub) endSpan(ci *CallInfo, err error) {
	span := s.scr.span
	if span == 0 {
		return
	}
	if err != nil {
		trace.Rec(span, trace.KindCallErr, int64(ci.Match), int64(ci.Bytes), 0)
	} else {
		trace.Rec(span, trace.KindCallEnd, int64(ci.Match), int64(ci.Bytes), int64(ci.BytesSerialized))
	}
	s.scr.span = 0
}

// Store exposes the template store (tests, inspector tool).
func (s *Stub) Store() *Store { return s.store }

// Template returns the current template for an operation+signature, or
// nil (tests, inspector tool).
func (s *Stub) Template(op, sig string) *Template { return s.store.lookup(op, sig) }

// MarkSuspect poisons the stored template for (op, sig), if present, so
// the structure's next Call degrades to a full first-time serialization.
// Call does this itself when a send fails; MarkSuspect is for owners who
// learn about a delivery failure later — the pipelined pool marks a
// template suspect when a call's response never arrives, after the send
// itself succeeded and the template's bytes left unconfirmed. It
// reports whether a template was found. MarkSuspect needs the same
// external synchronization as Call (the pool holds the replica lock).
func (s *Stub) MarkSuspect(op, sig string) bool {
	tpl := s.store.lookup(op, sig)
	if tpl == nil {
		return false
	}
	tpl.suspect = true
	return true
}

// Call serializes and sends m, reusing the saved template when possible.
// On success the message's dirty bits are cleared; on a send error they
// are preserved so a retry re-serializes the same changes, and the
// template is marked suspect: the next call of that structure is forced
// through a full first-time serialization (CallInfo.Degraded) rather
// than patching bytes whose delivery state is unknown.
func (s *Stub) Call(m *wire.Message) (CallInfo, error) {
	var ci CallInfo

	if trace.Enabled() && s.scr.span == 0 {
		s.scr.span = trace.BeginSpan()
	}
	if s.scr.span != 0 {
		ci.Span = s.scr.span
		trace.Rec(s.scr.span, trace.KindCallStart, trace.OpID(m.Operation()), int64(m.DirtyCount()), 0)
	}

	if s.cfg.DisableDiff {
		ci.Match = FullSerialization
		data := s.flat.render(m)
		ci.Bytes = len(data)
		ci.WireBytes = len(data)
		ci.BytesSerialized = len(data)
		s.scr.bufs = append(s.scr.bufs[:0], data)
		if err := s.sink.Send(s.scr.bufs); err != nil {
			err = fmt.Errorf("core: send: %w", err)
			s.endSpan(&ci, err)
			return ci, err
		}
		m.ClearDirty()
		s.stats.add(ci)
		s.endSpan(&ci, nil)
		return ci, nil
	}

	op := m.Operation()
	tpl := s.store.lookup(op, m.Signature())
	if tpl != nil && tpl.suspect {
		// The template's last send failed mid-flight: its on-wire state
		// is unknown, so degrade gracefully — discard it and serialize
		// this call from the live values as a fresh first-time send
		// rather than trusting possibly half-delivered bytes.
		s.store.remove(op, tpl.sig)
		tpl = nil
		ci.Degraded = true
	}
	switch {
	case tpl == nil:
		// First-Time Send: serialize fully and save the template.
		ci.Match = FirstTime
		tpl = newTemplate(m, s.cfg, &s.scr)
		s.store.insert(op, tpl)
		if s.scr.span != 0 {
			trace.Rec(s.scr.span, trace.KindTemplateBuild, trace.OpID(op), int64(tpl.buf.Len()), 0)
		}

	case tpl.msg == m && tpl.version == m.Version():
		if !m.AnyDirty() {
			ci.Match = ContentMatch
		} else {
			ci.Match = StructuralMatch
			tpl.applyDiff(m, &ci, &s.scr)
			if ci.Shifts > 0 || ci.Steals > 0 {
				ci.Match = PartialMatch
			}
		}

	default:
		// Same structure, different message object (or the bound message
		// was structurally rebuilt to an identical shape): the template
		// bytes are reusable but the dirty bits are not — re-serialize
		// every value, still skipping all tag generation.
		tpl.msg = m
		tpl.version = m.Version()
		m.MarkAllDirty()
		ci.Match = StructuralMatch
		if s.scr.span != 0 {
			trace.Rec(s.scr.span, trace.KindTemplateRebind, trace.OpID(op), 0, 0)
		}
		tpl.applyDiff(m, &ci, &s.scr)
		if ci.Shifts > 0 || ci.Steals > 0 {
			ci.Match = PartialMatch
		}
	}

	if s.scr.span != 0 {
		degraded := int64(0)
		if ci.Degraded {
			degraded = 1
		}
		trace.Rec(s.scr.span, trace.KindMatch, int64(ci.Match), degraded, 0)
	}

	ci.Bytes = tpl.buf.Len()
	ci.WireBytes = ci.Bytes
	if ci.Match == FirstTime {
		ci.BytesSerialized = ci.Bytes
	}
	if err := s.send(tpl, m, &ci); err != nil {
		// The send died with the template bytes possibly half-delivered:
		// mark the template suspect so the next call of this structure
		// degrades to a full re-serialization instead of an incremental
		// patch. Dirty bits stay set (see below), so no change is lost.
		tpl.suspect = true
		err = fmt.Errorf("core: send: %w", err)
		if s.scr.span != 0 {
			trace.Rec(s.scr.span, trace.KindTemplateSuspect, trace.OpID(op), 0, 0)
		}
		s.endSpan(&ci, err)
		return ci, err
	}
	m.ClearDirty()
	s.stats.add(ci)
	s.endSpan(&ci, nil)
	return ci, nil
}
