// Package core implements differential serialization (bSOAP), the
// contribution of "Differential Serialization for Optimized SOAP
// Performance" (HPDC 2004).
//
// A Stub keeps, per operation, the fully serialized form of the last
// message sent (the template, stored in chunks) together with a DUT table
// mapping each in-memory scalar to its byte location in the template. On
// each Call the outgoing message is classified against the saved
// template:
//
//   - Message Content Match: nothing dirty — resend the saved bytes.
//   - Perfect Structural Match: every dirty value still fits its field
//     width — overwrite the changed values in place.
//   - Partial Structural Match: some value outgrew its width — steal
//     neighbour padding or shift bytes (bounded by chunk size).
//   - First-Time Send: no template of this structure — serialize fully
//     and record the template.
//
// Stuffing (allocating fields wider than the value and padding with
// whitespace) is controlled by WidthPolicy; chunk overlaying for huge
// arrays lives in overlay.go.
package core

import (
	"net"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
)

// MatchKind classifies how a Call was served (paper §3, the four
// matching possibilities, plus the diff-disabled mode).
type MatchKind int

const (
	// FirstTime is a full serialization that records a new template.
	FirstTime MatchKind = iota
	// ContentMatch resent the template bytes unchanged.
	ContentMatch
	// StructuralMatch rewrote only dirty values, all within their field
	// widths (the paper's perfect structural match).
	StructuralMatch
	// PartialMatch rewrote dirty values and had to expand at least one
	// field (stealing or shifting).
	PartialMatch
	// FullSerialization is a from-scratch serialization with differential
	// serialization disabled (the paper's "bSOAP Full Serialization").
	FullSerialization
)

// String returns a readable match name.
func (k MatchKind) String() string {
	switch k {
	case FirstTime:
		return "first-time send"
	case ContentMatch:
		return "message content match"
	case StructuralMatch:
		return "perfect structural match"
	case PartialMatch:
		return "partial structural match"
	case FullSerialization:
		return "full serialization"
	}
	return "unknown match"
}

// MaxWidth selects the type's maximum lexical width in a WidthPolicy
// field (the paper's full stuffing: shifting can never occur).
const MaxWidth = -1

// WidthPolicy chooses the field width allocated per scalar kind when a
// template is first serialized: 0 allocates exactly the value's length,
// a positive n stuffs to at least n characters (the paper's intermediate
// widths), and MaxWidth stuffs to the type's maximum. Strings have no
// maximum and always use at least their current length.
type WidthPolicy struct {
	Int    int
	Double int
	Bool   int
	String int
}

// policyFor returns the raw policy value for a scalar type.
func (w WidthPolicy) policyFor(t *wire.Type) int {
	switch t.Kind {
	case wire.Int:
		return w.Int
	case wire.Double:
		return w.Double
	case wire.Bool:
		return w.Bool
	case wire.String:
		return w.String
	}
	return 0
}

// widthFor resolves the policy for one value of scalar type t whose
// encoded length is serLen.
func (w WidthPolicy) widthFor(t *wire.Type, serLen int) int {
	p := w.policyFor(t)
	switch {
	case p == 0:
		return serLen
	case p == MaxWidth:
		mw := t.MaxWidth()
		if mw < serLen { // strings: MaxWidth() == 0
			return serLen
		}
		return mw
	default:
		if p < serLen {
			return serLen
		}
		return p
	}
}

// Config tunes a Stub.
type Config struct {
	// Chunk configures the template buffers (sizes, split threshold,
	// trailing slack).
	Chunk chunk.Config
	// Width is the stuffing policy applied at first-time serialization.
	Width WidthPolicy
	// EnableStealing turns on neighbour-padding stealing before falling
	// back to shifting when a value outgrows its field.
	EnableStealing bool
	// StealScan bounds how many entries to the right are examined for a
	// padding donor. Zero selects 8.
	StealScan int
	// DisableDiff turns differential serialization off: every call
	// serializes from scratch (the paper's baseline bSOAP mode).
	DisableDiff bool
	// MaxTemplatesPerOp bounds how many structurally distinct templates
	// are retained per operation (paper §6 future work: multiple
	// templates per remote service). Zero selects 4.
	MaxTemplatesPerOp int
}

func (c Config) withDefaults() Config {
	if c.StealScan <= 0 {
		c.StealScan = 8
	}
	if c.MaxTemplatesPerOp <= 0 {
		c.MaxTemplatesPerOp = 4
	}
	return c
}

// Sink consumes one complete serialized message as a vector of byte
// segments (one per chunk), the shape a scatter-gather send wants.
// Implementations live in internal/transport; tests use CountingSink.
type Sink interface {
	Send(bufs net.Buffers) error
}

// StreamSink consumes a message incrementally; the chunk-overlaying
// engine hands each portion to StreamChunk as soon as it is serialized
// (HTTP/1.1 chunked streaming in the paper).
type StreamSink interface {
	BeginStream() error
	StreamChunk(p []byte) error
	EndStream() error
}

// DeltaSink is a Sink that can negotiate differential transmission:
// sending the dirty regions of a template as a patch frame instead of
// the full body when the peer is known to hold the same template bytes.
// The sink owns the per-connection synchronization state (which
// template ids the peer has acknowledged, and at which epoch); the stub
// owns the template ids and epochs themselves.
type DeltaSink interface {
	Sink
	// DeltaEpoch reports the epoch at which the peer is believed
	// synchronized for template tid; ok is false when the peer has not
	// acknowledged the template (or delta is not negotiated), in which
	// case the stub sends the full body.
	DeltaEpoch(tid uint64) (epoch uint64, ok bool)
	// SendFull sends the complete body, annotated with the template's
	// id and current epoch so a capable peer can store it as the delta
	// base for future patches.
	SendFull(bufs net.Buffers, tid, epoch uint64) error
	// SendDelta sends a patch frame (already encoded by the stub).
	// Returning an error wrapping wire.ErrDeltaResync means the peer
	// rejected the patch and the caller must fall back to SendFull;
	// the connection itself remains healthy in that case.
	SendDelta(bufs net.Buffers, tid, newEpoch uint64) error
}

// CallInfo reports what one Call did.
type CallInfo struct {
	Match MatchKind
	// Span is the flight-recorder span id grouping this call's trace
	// events (zero when tracing is off).
	Span uint64
	// Bytes is the total message size handed to the sink.
	Bytes int
	// BytesSerialized counts the bytes this call actually converted from
	// in-memory values into their lexical forms: the full message for
	// first-time and diff-disabled sends, zero for a content match, and
	// only the rewritten value bytes for structural matches. The gap
	// between BytesSerialized and Bytes is the serialization work
	// differential serialization avoided.
	BytesSerialized int
	// ValuesRewritten counts leaves re-serialized into the template.
	ValuesRewritten int
	// TagShifts counts closing-tag shifts (value shrank or grew within
	// its width, forcing the close tag and padding to be rewritten).
	TagShifts int
	// Shifts counts values whose field had to be expanded by shifting.
	Shifts int
	// Steals counts expansions served by stealing neighbour padding.
	Steals int
	// Grows and Splits count chunk reallocations and chunk splits.
	Grows  int
	Splits int
	// Degraded marks a first-time send that was forced because the
	// structure's previous template was suspect (its last send failed
	// mid-flight), rather than because no template existed.
	Degraded bool
	// WireBytes is what actually went onto the wire for this call: the
	// patch frame size on a delta send, otherwise equal to Bytes. The
	// gap between Bytes (the message the peer reconstructs) and
	// WireBytes is the transmission work differential transmission
	// avoided.
	WireBytes int
	// DeltaSent marks a call served by a patch frame instead of the
	// full body; DeltaResync marks a call whose patch was rejected by
	// the peer and transparently resent in full.
	DeltaSent   bool
	DeltaResync bool
	// DeltaEncodeNs is the time spent encoding the patch frame
	// (region walk + checksum), for stage attribution.
	DeltaEncodeNs int64
}

// Stats accumulates CallInfo across a Stub's lifetime.
type Stats struct {
	Calls              int64
	FirstTimeSends     int64
	ContentMatches     int64
	StructuralMatches  int64
	PartialMatches     int64
	FullSerializations int64
	// DegradedFTS counts the subset of FirstTimeSends forced by a
	// suspect template (graceful degradation after a failed send).
	DegradedFTS     int64
	BytesSent       int64
	BytesOnWire     int64
	BytesSerialized int64
	ValuesRewritten int64
	TagShifts       int64
	Shifts          int64
	Steals          int64
	Grows           int64
	Splits          int64
	// DeltaSends counts calls served by a patch frame; DeltaResyncs
	// counts patches the peer rejected (resent in full).
	DeltaSends   int64
	DeltaResyncs int64
}

func (s *Stats) add(ci CallInfo) {
	s.Calls++
	switch ci.Match {
	case FirstTime:
		s.FirstTimeSends++
		if ci.Degraded {
			s.DegradedFTS++
		}
	case ContentMatch:
		s.ContentMatches++
	case StructuralMatch:
		s.StructuralMatches++
	case PartialMatch:
		s.PartialMatches++
	case FullSerialization:
		s.FullSerializations++
	}
	s.BytesSent += int64(ci.Bytes)
	s.BytesOnWire += int64(ci.WireBytes)
	s.BytesSerialized += int64(ci.BytesSerialized)
	if ci.DeltaSent {
		s.DeltaSends++
	}
	if ci.DeltaResync {
		s.DeltaResyncs++
	}
	s.ValuesRewritten += int64(ci.ValuesRewritten)
	s.TagShifts += int64(ci.TagShifts)
	s.Shifts += int64(ci.Shifts)
	s.Steals += int64(ci.Steals)
	s.Grows += int64(ci.Grows)
	s.Splits += int64(ci.Splits)
}
