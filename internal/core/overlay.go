package core

import (
	"errors"
	"fmt"

	"bsoap/internal/fastconv"
	"bsoap/internal/soapenv"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Chunk overlaying (paper §3.3) bounds the memory cost of differential
// serialization for very large arrays: instead of keeping the whole
// serialized array resident, one chunk's worth of items is serialized,
// streamed to the transport, and then the *same memory* is overlaid with
// the next portion of the array. The item tags are written once when the
// resident chunk is first laid out; every later portion rewrites only
// the values, so — as the paper observes — overlay performance tracks
// 100% value re-serialization.
//
// Overlaying requires every item to have a fixed serialized span, so the
// stub's WidthPolicy must give each scalar kind a bound (fixed or
// MaxWidth); strings are not supported.

// overlayState is the resident-chunk layout for one operation, rebuilt
// whenever the message structure changes.
type overlayState struct {
	sig string
	// head/tail are kept as []byte so the per-call StreamChunk sends
	// need no string conversion (and hence no allocation).
	head, tail   []byte
	itemSpan     int   // bytes per item in the resident chunk
	perItem      int   // scalar leaves per item
	valueOff     []int // per-leaf value offset within the item span
	valueWidth   []int // per-leaf field width
	valueClose   []string
	frame        []byte // static item frame: tags plus blank value fields
	itemsPerMbuf int    // items per resident chunk
	// Two resident buffers: CallOverlay uses only the first; the
	// pipelined variant alternates so serialization of one portion
	// overlaps the transport write of the previous one.
	resident [2][]byte
	laidOut  [2]int // items laid out per resident buffer
}

// MemoryFootprint reports the overlay engine's resident cost for one
// operation: the head/tail strings, the item frame, and the resident
// buffers — independent of array length, unlike a full template.
func (st *overlayState) MemoryFootprint() int {
	n := len(st.head) + len(st.tail) + len(st.frame)
	for _, r := range st.resident {
		n += cap(r)
	}
	return n
}

// OverlayFootprint reports the resident memory of the overlay state for
// an operation, or 0 if none exists.
func (s *Stub) OverlayFootprint(op string) int {
	if st, ok := s.overlays[op]; ok {
		return st.MemoryFootprint()
	}
	return 0
}

// ErrOverlayUnsupported reports a message shape the overlay engine does
// not handle.
var ErrOverlayUnsupported = errors.New("core: overlay requires a message whose final parameter is an array of bounded-width scalars or structs; scalar parameters may precede it")

// CallOverlay sends m through sink using chunk overlaying. The message's
// final parameter must be an array; any preceding parameters are scalars
// serialized into the message head. The template store is not used: the
// resident chunk *is* the (single-portion) template, kept across calls.
func (s *Stub) CallOverlay(m *wire.Message, sink StreamSink) (CallInfo, error) {
	var ci CallInfo
	st, err := s.overlayStateFor(m)
	if err != nil {
		return ci, err
	}
	arr := m.Params()[len(m.Params())-1]

	if trace.Enabled() && s.scr.span == 0 {
		s.scr.span = trace.BeginSpan()
	}
	if s.scr.span != 0 {
		ci.Span = s.scr.span
		trace.Rec(s.scr.span, trace.KindCallStart, trace.OpID(m.Operation()), int64(m.DirtyCount()), 0)
	}

	if err := sink.BeginStream(); err != nil {
		err = fmt.Errorf("core: overlay begin: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	if err := sink.StreamChunk(st.head); err != nil {
		err = fmt.Errorf("core: overlay head: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	ci.Bytes += len(st.head)

	for base := 0; base < arr.Count; base += st.itemsPerMbuf {
		n := arr.Count - base
		if n > st.itemsPerMbuf {
			n = st.itemsPerMbuf
		}
		portion, err := st.fillPortion(m, arr, base, n, 0, &s.scr, &ci)
		if err != nil {
			s.endSpan(&ci, err)
			return ci, err
		}
		if err := sink.StreamChunk(portion); err != nil {
			err = fmt.Errorf("core: overlay portion: %w", err)
			s.endSpan(&ci, err)
			return ci, err
		}
		ci.Bytes += len(portion)
		if s.scr.span != 0 {
			trace.Rec(s.scr.span, trace.KindOverlayPortion, int64(base), int64(n), int64(len(portion)))
		}
	}

	if err := sink.StreamChunk(st.tail); err != nil {
		err = fmt.Errorf("core: overlay tail: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	ci.Bytes += len(st.tail)
	if err := sink.EndStream(); err != nil {
		err = fmt.Errorf("core: overlay end: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	ci.Match = StructuralMatch
	m.ClearDirty()
	s.stats.add(ci)
	s.endSpan(&ci, nil)
	return ci, nil
}

// overlayStateFor returns (building if needed) the overlay layout for m.
func (s *Stub) overlayStateFor(m *wire.Message) (*overlayState, error) {
	if s.overlays == nil {
		s.overlays = make(map[string]*overlayState)
	}
	if st, ok := s.overlays[m.Operation()]; ok && st.sig == m.Signature() {
		return st, nil
	}
	st, err := buildOverlayState(m, s.cfg)
	if err != nil {
		return nil, err
	}
	s.overlays[m.Operation()] = st
	return st, nil
}

// buildOverlayState validates the message shape and computes the fixed
// per-item layout.
func buildOverlayState(m *wire.Message, cfg Config) (*overlayState, error) {
	params := m.Params()
	if len(params) == 0 || params[len(params)-1].Type.Kind != wire.Array {
		return nil, ErrOverlayUnsupported
	}
	arr := params[len(params)-1]
	for _, p := range params[:len(params)-1] {
		if !p.Type.Kind.Scalar() {
			return nil, ErrOverlayUnsupported
		}
	}

	st := &overlayState{sig: m.Signature()}

	// Head: envelope, operation, leading scalar params, array open tag.
	head := soapenv.EnvelopeStart(m.Namespace()) + soapenv.OperationStart(m.Operation())
	var scratch [xsdlex.MaxDoubleWidth]byte
	for _, p := range params[:len(params)-1] {
		enc := encodeLeaf(m, p.First, p.Type, scratch[:])
		head += soapenv.ScalarStart(p.Name, p.Type) + string(enc) + soapenv.CloseTag(p.Name)
	}
	head += soapenv.ArrayStart(arr.Name, arr.Type.Elem, arr.Count)
	st.head = []byte(head)
	st.tail = []byte(soapenv.ArrayEnd(arr.Name) + soapenv.OperationEnd(m.Operation()) + soapenv.EnvelopeEnd)

	// Per-item layout: collect scalar fields in document order and build
	// the static frame (tags plus blank value fields) as one pass.
	var walk func(t *wire.Type, tag string) error
	walk = func(t *wire.Type, tag string) error {
		if t.Kind == wire.Struct {
			st.frame = append(st.frame, soapenv.OpenTag(tag)...)
			for _, f := range t.Fields {
				if err := walk(f.Type, f.Name); err != nil {
					return err
				}
			}
			st.frame = append(st.frame, soapenv.CloseTag(tag)...)
			return nil
		}
		var w int
		switch p := cfg.Width.policyFor(t); {
		case t.Kind == wire.String:
			return ErrOverlayUnsupported
		case p == MaxWidth:
			w = t.MaxWidth()
		case p > 0:
			w = p
		default:
			// Exact-width fields cannot be overlaid: the next portion's
			// values would not fit a previously laid-out frame.
			return ErrOverlayUnsupported
		}
		cls := soapenv.CloseTag(tag)
		st.frame = append(st.frame, soapenv.OpenTag(tag)...)
		st.valueOff = append(st.valueOff, len(st.frame))
		st.valueWidth = append(st.valueWidth, w)
		st.valueClose = append(st.valueClose, cls)
		for i := 0; i < w+len(cls); i++ {
			st.frame = append(st.frame, ' ')
		}
		return nil
	}
	if err := walk(arr.Type.Elem, soapenv.ItemTag); err != nil {
		return nil, err
	}
	st.itemSpan = len(st.frame)
	st.perItem = arr.Type.LeavesPerValue()

	chunkSize := cfg.Chunk.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 32 * 1024
	}
	st.itemsPerMbuf = chunkSize / st.itemSpan
	if st.itemsPerMbuf < 1 {
		st.itemsPerMbuf = 1
	}
	st.resident[0] = make([]byte, st.itemsPerMbuf*st.itemSpan)
	return st, nil
}

// fillPortion serializes items [base, base+n) of arr into resident
// buffer buf and returns the filled slice. Item frames (tags, padding)
// are laid out the first time the buffer must hold that many items;
// afterwards only the values are rewritten — "the tags that describe
// the data need not be rewritten" (§3.3).
func (st *overlayState) fillPortion(m *wire.Message, arr wire.Param, base, n, buf int, sc *scratch, ci *CallInfo) ([]byte, error) {
	res := st.resident[buf]
	if res == nil {
		res = make([]byte, st.itemsPerMbuf*st.itemSpan)
		st.resident[buf] = res
	}
	for st.laidOut[buf] < n {
		copy(res[st.laidOut[buf]*st.itemSpan:], st.frame)
		st.laidOut[buf]++
	}
	for it := 0; it < n; it++ {
		ibase := it * st.itemSpan
		leaf := arr.First + (base+it)*st.perItem
		for f := 0; f < st.perItem; f++ {
			off := ibase + st.valueOff[f]
			enc := sc.encode(m, leaf+f, m.LeafType(leaf+f))
			if len(enc) > st.valueWidth[f] {
				return nil, fmt.Errorf("core: overlay value wider (%d) than field (%d); use a bounded WidthPolicy", len(enc), st.valueWidth[f])
			}
			copy(res[off:], enc)
			cls := st.valueClose[f]
			copy(res[off+len(enc):], cls)
			fastconv.Pad(res, off+len(enc)+len(cls), off+st.valueWidth[f]+len(cls))
			ci.ValuesRewritten++
		}
	}
	return res[:n*st.itemSpan], nil
}

// CallOverlayPipelined is CallOverlay with pipelined send (companion
// paper [3], "Chunk-Overlaying and Pipelined-Send"): a writer goroutine
// streams portion k while the caller serializes portion k+1 into the
// alternate resident buffer, overlapping conversion with transport I/O.
func (s *Stub) CallOverlayPipelined(m *wire.Message, sink StreamSink) (CallInfo, error) {
	var ci CallInfo
	st, err := s.overlayStateFor(m)
	if err != nil {
		return ci, err
	}
	arr := m.Params()[len(m.Params())-1]

	if trace.Enabled() && s.scr.span == 0 {
		s.scr.span = trace.BeginSpan()
	}
	if s.scr.span != 0 {
		ci.Span = s.scr.span
		trace.Rec(s.scr.span, trace.KindCallStart, trace.OpID(m.Operation()), int64(m.DirtyCount()), 0)
	}

	if err := sink.BeginStream(); err != nil {
		err = fmt.Errorf("core: overlay begin: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}

	writeCh := make(chan []byte)
	errCh := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range writeCh {
			if err := sink.StreamChunk(p); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// send hands a portion to the writer; false means the writer died.
	send := func(p []byte) bool {
		select {
		case writeCh <- p:
			return true
		case <-done:
			return false
		}
	}
	finish := func() error {
		close(writeCh)
		<-done
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}

	ok := send(st.head)
	ci.Bytes += len(st.head)
	buf := 0
	for base := 0; ok && base < arr.Count; base += st.itemsPerMbuf {
		n := arr.Count - base
		if n > st.itemsPerMbuf {
			n = st.itemsPerMbuf
		}
		portion, ferr := st.fillPortion(m, arr, base, n, buf, &s.scr, &ci)
		if ferr != nil {
			werr := finish()
			if werr != nil {
				werr = fmt.Errorf("core: overlay: %v (writer: %w)", ferr, werr)
				s.endSpan(&ci, werr)
				return ci, werr
			}
			s.endSpan(&ci, ferr)
			return ci, ferr
		}
		ok = send(portion)
		ci.Bytes += len(portion)
		if ok && s.scr.span != 0 {
			trace.Rec(s.scr.span, trace.KindOverlayPortion, int64(base), int64(n), int64(len(portion)))
		}
		buf ^= 1
	}
	if ok {
		send(st.tail)
		ci.Bytes += len(st.tail)
	}
	if err := finish(); err != nil {
		err = fmt.Errorf("core: overlay portion: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	if err := sink.EndStream(); err != nil {
		err = fmt.Errorf("core: overlay end: %w", err)
		s.endSpan(&ci, err)
		return ci, err
	}
	ci.Match = StructuralMatch
	m.ClearDirty()
	s.stats.add(ci)
	s.endSpan(&ci, nil)
	return ci, nil
}
