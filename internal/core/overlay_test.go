package core

import (
	"errors"
	"net"
	"strings"
	"testing"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
)

// captureStream records a streamed message and its portion boundaries.
type captureStream struct {
	data     []byte
	portions int
	begun    bool
	ended    bool
	failAt   int // fail on the Nth StreamChunk (1-based); 0 = never
}

func (c *captureStream) BeginStream() error {
	c.begun = true
	c.data = c.data[:0]
	c.portions = 0
	c.ended = false
	return nil
}

func (c *captureStream) StreamChunk(p []byte) error {
	c.portions++
	if c.failAt != 0 && c.portions == c.failAt {
		return errors.New("stream broken")
	}
	c.data = append(c.data, p...)
	return nil
}

func (c *captureStream) EndStream() error {
	c.ended = true
	return nil
}

// Send satisfies Sink so the same object can be handed to NewStub; the
// overlay tests never use the non-streaming path.
func (c *captureStream) Send(bufs net.Buffers) error {
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

func overlayConfig() Config {
	return Config{
		Chunk: chunk.Config{ChunkSize: 512},
		Width: WidthPolicy{Double: MaxWidth, Int: MaxWidth},
	}
}

func TestOverlayRendersCorrectValues(t *testing.T) {
	m := wire.NewMessage("urn:t", "bigsend")
	n := 200 // several portions at 512-byte chunks
	arr := m.AddDoubleArray("v", n)
	for i := 0; i < n; i++ {
		arr.Set(i, float64(i)+0.5)
	}
	sink := &captureStream{}
	s := NewStub(overlayConfig(), sink)
	ci, err := s.CallOverlay(m, sink)
	if err != nil {
		t.Fatal(err)
	}
	if !sink.begun || !sink.ended {
		t.Fatal("stream not framed")
	}
	if sink.portions < 4 {
		t.Fatalf("only %d portions; overlay did not chunk", sink.portions)
	}
	if ci.ValuesRewritten != n {
		t.Fatalf("rewrote %d values, want %d", ci.ValuesRewritten, n)
	}
	if ci.Bytes != len(sink.data) {
		t.Fatalf("ci.Bytes = %d, stream got %d", ci.Bytes, len(sink.data))
	}
	checkRendered(t, m, sink.data)
}

func TestOverlayMatchesNonOverlayValues(t *testing.T) {
	build := func() *wire.Message {
		m := wire.NewMessage("urn:t", "bigsend")
		arr := m.AddDoubleArray("v", 150)
		for i := 0; i < 150; i++ {
			arr.Set(i, float64(i)*1.5)
		}
		return m
	}
	mOv, mFull := build(), build()

	ovSink := &captureStream{}
	sOv := NewStub(overlayConfig(), ovSink)
	if _, err := sOv.CallOverlay(mOv, ovSink); err != nil {
		t.Fatal(err)
	}
	fullSink := &captureSink{}
	sFull := NewStub(overlayConfig(), fullSink)
	if _, err := sFull.Call(mFull); err != nil {
		t.Fatal(err)
	}
	ovLeaves := leafTexts(t, ovSink.data)
	fullLeaves := leafTexts(t, fullSink.data)
	if len(ovLeaves) != len(fullLeaves) {
		t.Fatalf("leaf counts differ: %d vs %d", len(ovLeaves), len(fullLeaves))
	}
	for i := range ovLeaves {
		if ovLeaves[i] != fullLeaves[i] {
			t.Fatalf("leaf %d: overlay %q vs full %q", i, ovLeaves[i], fullLeaves[i])
		}
	}
}

func TestOverlayRepeatSendsReuseFrames(t *testing.T) {
	m := wire.NewMessage("urn:t", "bigsend")
	n := 100
	arr := m.AddDoubleArray("v", n)
	for i := 0; i < n; i++ {
		arr.Set(i, 1)
	}
	sink := &captureStream{}
	s := NewStub(overlayConfig(), sink)
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		arr.Set(i, float64(i)+0.25)
	}
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
}

func TestOverlayMIOArray(t *testing.T) {
	m := wire.NewMessage("urn:t", "meshsend")
	n := 60
	arr := m.AddStructArray("mios", mioType(), n)
	for i := 0; i < n; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetInt(i, 1, int32(-i))
		arr.SetDouble(i, 2, float64(i)/3)
	}
	sink := &captureStream{}
	s := NewStub(overlayConfig(), sink)
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
}

func TestOverlayWithLeadingScalars(t *testing.T) {
	m := wire.NewMessage("urn:t", "headersend")
	m.AddInt("iteration", 7)
	m.AddDouble("tolerance", 0.001)
	arr := m.AddDoubleArray("v", 40)
	for i := 0; i < 40; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureStream{}
	s := NewStub(overlayConfig(), sink)
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
	if !strings.Contains(string(sink.data), `<iteration xsi:type="xsd:int">7</iteration>`) {
		t.Fatal("leading scalar missing from head")
	}
}

func TestOverlayLastPartialPortion(t *testing.T) {
	m := wire.NewMessage("urn:t", "bigsend")
	// Pick a count that does not divide evenly into portions.
	n := 37
	arr := m.AddDoubleArray("v", n)
	for i := 0; i < n; i++ {
		arr.Set(i, float64(i))
	}
	cfg := overlayConfig()
	cfg.Chunk.ChunkSize = 300 // ~9 items of 31 bytes per portion
	sink := &captureStream{}
	s := NewStub(cfg, sink)
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	got := leafTexts(t, sink.data)
	if len(got) != n {
		t.Fatalf("streamed %d leaves, want %d", len(got), n)
	}
	checkRendered(t, m, sink.data)
}

func TestOverlayUnsupportedShapes(t *testing.T) {
	sink := &captureStream{}

	// No array parameter.
	m := wire.NewMessage("urn:t", "op")
	m.AddInt("x", 1)
	s := NewStub(overlayConfig(), sink)
	if _, err := s.CallOverlay(m, sink); !errors.Is(err, ErrOverlayUnsupported) {
		t.Fatalf("scalar-only message: err = %v", err)
	}

	// Exact-width policy cannot be overlaid.
	m2 := wire.NewMessage("urn:t", "op")
	m2.AddDoubleArray("v", 10)
	s2 := NewStub(Config{}, sink)
	if _, err := s2.CallOverlay(m2, sink); !errors.Is(err, ErrOverlayUnsupported) {
		t.Fatalf("exact widths: err = %v", err)
	}

	// String arrays are unbounded.
	m3 := wire.NewMessage("urn:t", "op")
	m3.AddStringArray("s", 4)
	s3 := NewStub(overlayConfig(), sink)
	if _, err := s3.CallOverlay(m3, sink); !errors.Is(err, ErrOverlayUnsupported) {
		t.Fatalf("string array: err = %v", err)
	}
}

func TestOverlayStreamError(t *testing.T) {
	m := wire.NewMessage("urn:t", "bigsend")
	arr := m.AddDoubleArray("v", 100)
	for i := 0; i < 100; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureStream{failAt: 2}
	s := NewStub(overlayConfig(), sink)
	if _, err := s.CallOverlay(m, sink); err == nil {
		t.Fatal("stream error not propagated")
	}
}

func TestOverlayIntermediateFixedWidth(t *testing.T) {
	m := wire.NewMessage("urn:t", "bigsend")
	arr := m.AddDoubleArray("v", 50)
	for i := 0; i < 50; i++ {
		arr.Set(i, 1.5)
	}
	cfg := overlayConfig()
	cfg.Width = WidthPolicy{Double: 18}
	sink := &captureStream{}
	s := NewStub(cfg, sink)
	if _, err := s.CallOverlay(m, sink); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)

	// A 24-char value cannot fit an 18-char overlay frame.
	arr.Set(0, -1.7976931348623157e+308)
	if _, err := s.CallOverlay(m, sink); err == nil {
		t.Fatal("overflowing value accepted by fixed-width overlay")
	}
}
