package core

import (
	"errors"
	"net"
	"testing"

	"bsoap/internal/wire"
)

// flakySink fails the sends whose (1-based) index is in failOn, and
// records every successful send like captureSink.
type flakySink struct {
	captureSink
	n      int
	failOn map[int]bool
}

var errFlaky = errors.New("flaky sink: send failed")

func (f *flakySink) Send(bufs net.Buffers) error {
	f.n++
	if f.failOn[f.n] {
		return errFlaky
	}
	return f.captureSink.Send(bufs)
}

// TestSuspectTemplateForcesDegradedFTS exercises the graceful-degradation
// contract: a failed send poisons the template, the next call is a
// degraded first-time send with correct bytes, and the engine then warms
// back up to content matches.
func TestSuspectTemplateForcesDegradedFTS(t *testing.T) {
	sink := &flakySink{failOn: map[int]bool{3: true}}
	s := NewStub(Config{}, sink)

	m := wire.NewMessage("urn:t", "op")
	arr := m.AddDoubleArray("values", 8)
	for i := 0; i < 8; i++ {
		arr.Set(i, float64(i))
	}
	m.ClearDirty()

	// Send 1: first-time; send 2: structural match.
	if ci, err := s.Call(m); err != nil || ci.Match != FirstTime {
		t.Fatalf("send 1: ci=%+v err=%v", ci, err)
	}
	arr.Set(0, 9) // same serialized width as the initial "0"
	if ci, err := s.Call(m); err != nil || ci.Match != StructuralMatch {
		t.Fatalf("send 2: ci=%+v err=%v", ci, err)
	}

	// Send 3 fails mid-flight: dirty bits must survive and the template
	// must become suspect.
	arr.Set(1, 7.25)
	if _, err := s.Call(m); !errors.Is(err, errFlaky) {
		t.Fatalf("send 3: err=%v, want flaky failure", err)
	}
	if !m.AnyDirty() {
		t.Fatal("dirty bits cleared by a failed send")
	}

	// Send 4: degraded first-time send, not a diff against the poisoned
	// template.
	ci, err := s.Call(m)
	if err != nil {
		t.Fatalf("send 4: %v", err)
	}
	if ci.Match != FirstTime || !ci.Degraded {
		t.Fatalf("send 4: match=%v degraded=%v, want degraded first-time", ci.Match, ci.Degraded)
	}
	checkRendered(t, m, sink.data)
	if got := s.Stats().DegradedFTS; got != 1 {
		t.Fatalf("DegradedFTS=%d, want 1", got)
	}
	if n := s.Store().TemplateCount(); n != 1 {
		t.Fatalf("TemplateCount=%d after degraded FTS, want 1 (old template dropped)", n)
	}

	// Send 5: the rebuilt template serves an ordinary content match.
	if ci, err := s.Call(m); err != nil || ci.Match != ContentMatch {
		t.Fatalf("send 5: ci=%+v err=%v", ci, err)
	}
	checkRendered(t, m, sink.data)
}

// TestSuspectFirstTimeSend covers the same degradation when the very
// first send of a structure fails: the recorded template must not be
// trusted either.
func TestSuspectFirstTimeSend(t *testing.T) {
	sink := &flakySink{failOn: map[int]bool{1: true}}
	s := NewStub(Config{}, sink)

	m := wire.NewMessage("urn:t", "op")
	r := m.AddInt("x", 5)
	m.ClearDirty()

	if _, err := s.Call(m); !errors.Is(err, errFlaky) {
		t.Fatalf("send 1: err=%v, want flaky failure", err)
	}
	r.Set(123456)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatalf("send 2: %v", err)
	}
	if ci.Match != FirstTime || !ci.Degraded {
		t.Fatalf("send 2: match=%v degraded=%v, want degraded first-time", ci.Match, ci.Degraded)
	}
	checkRendered(t, m, sink.data)
}
