package core

import (
	"errors"
	"time"

	"bsoap/internal/chunk"
	"bsoap/internal/trace"
	"bsoap/internal/wire"
)

// Differential transmission (client side): when the sink reports the
// peer synchronized with a template, the dirty leaf spans the engine
// already tracked for the diff become the wire payload — a patch frame
// of (offset, length, bytes) regions plus a checksum — instead of the
// full body. The encoder reuses the stub's scratch wholesale, so a
// steady-state delta send allocates nothing.

// deltaRegion is one contiguous dirty run, addressed both chunk-locally
// (to alias the template bytes in the gather vector) and absolutely
// (the frame's body offset).
type deltaRegion struct {
	c      *chunk.Chunk
	lo, hi int // chunk-local byte range
	abs    int // absolute body offset of lo
}

// send pushes the template onto the sink, preferring a patch frame when
// the sink is delta-capable and synchronized with this template at its
// pre-call epoch. A peer-rejected patch (wire.ErrDeltaResync) falls
// back to a full send on the same connection without poisoning the
// template; any other error propagates so Call applies the usual
// suspect/degraded algebra.
func (s *Stub) send(tpl *Template, m *wire.Message, ci *CallInfo) error {
	ds, capable := s.sink.(DeltaSink)
	if !capable {
		return s.sink.Send(tpl.buf.BuffersInto(&s.scr.bufs))
	}
	// The epoch names the template's content version: capture the base
	// (what a synchronized peer holds) before bumping for any call that
	// changed the bytes. Failed sends bump too — harmless, since their
	// epoch is never acknowledged and correctness rides the checksum.
	baseEpoch := tpl.deltaEpoch
	if ci.Match != ContentMatch {
		tpl.deltaEpoch++
	}
	if s.deltaEligible(ds, tpl, ci, baseEpoch) {
		start := time.Now()
		if ok := s.encodeDelta(tpl, m, ci, baseEpoch); ok {
			ci.DeltaEncodeNs = time.Since(start).Nanoseconds()
			err := ds.SendDelta(s.scr.bufs, tpl.deltaID, tpl.deltaEpoch)
			if err == nil {
				ci.DeltaSent = true
				if s.scr.span != 0 {
					trace.Rec(s.scr.span, trace.KindDeltaSend, int64(ci.WireBytes), int64(ci.Bytes), int64(tpl.deltaID))
				}
				return nil
			}
			if errors.Is(err, wire.ErrDeltaResync) {
				// The peer lost or refused the base (eviction, restart,
				// epoch skew): resend in full on the same connection.
				// The frame already crossed the wire, so it stays in
				// WireBytes alongside the body.
				ci.DeltaResync = true
				ci.WireBytes += ci.Bytes
				if s.scr.span != 0 {
					trace.Rec(s.scr.span, trace.KindDeltaResync, int64(tpl.deltaID), 0, 0)
				}
				return ds.SendFull(tpl.buf.BuffersInto(&s.scr.bufs), tpl.deltaID, tpl.deltaEpoch)
			}
			return err
		}
	}
	return ds.SendFull(tpl.buf.BuffersInto(&s.scr.bufs), tpl.deltaID, tpl.deltaEpoch)
}

// deltaEligible reports whether this call can go out as a patch frame:
// the diff stayed within field widths (no shifts, steals, grows or
// splits — those move bytes the dirty bits don't cover), and the sink
// believes the peer holds this template at exactly the pre-call epoch.
func (s *Stub) deltaEligible(ds DeltaSink, tpl *Template, ci *CallInfo, baseEpoch uint64) bool {
	if ci.Match != ContentMatch && ci.Match != StructuralMatch {
		return false
	}
	if ci.Shifts != 0 || ci.Steals != 0 || ci.Grows != 0 || ci.Splits != 0 {
		return false
	}
	synced, ok := ds.DeltaEpoch(tpl.deltaID)
	return ok && synced == baseEpoch
}

// encodeDelta builds the patch frame into the stub's scratch and fills
// s.scr.bufs with the gather vector (frame header, then per region an
// 8-byte header followed by bytes aliasing the template's chunks — the
// region payload is never copied). Returns false when the frame would
// not be smaller than the full body; the caller then sends full.
//
// Dirty leaves are visited in table order, which is buffer order, so a
// single cursor walks the chunk list to turn (chunk, offset) positions
// into absolute body offsets; adjacent dirty spans in the same chunk
// coalesce into one region.
func (s *Stub) encodeDelta(tpl *Template, m *wire.Message, ci *CallInfo, baseEpoch uint64) bool {
	sc := &s.scr
	regs := sc.regs[:0]
	var cur *chunk.Chunk
	curOff := 0
	frameLen := wire.DeltaHeaderLen
	n := tpl.tab.Len()
	for i := 0; i < n; i++ {
		if !m.Dirty(i) {
			continue
		}
		e := tpl.tab.At(i)
		if e.Chunk != cur {
			if cur == nil {
				cur = tpl.buf.Head()
			}
			for cur != e.Chunk {
				curOff += cur.Len()
				cur = cur.Next()
				if cur == nil {
					return false // table/buffer skew; punt to a full send
				}
			}
		}
		lo, hi := e.Off, e.SpanEnd()
		if k := len(regs) - 1; k >= 0 && regs[k].c == cur && regs[k].hi == lo {
			regs[k].hi = hi
			frameLen += hi - lo
		} else {
			regs = append(regs, deltaRegion{c: cur, lo: lo, hi: hi, abs: curOff + lo})
			frameLen += wire.DeltaRegionHeaderLen + (hi - lo)
		}
	}
	sc.regs = regs
	bodyLen := tpl.buf.Len()
	if frameLen >= bodyLen {
		return false
	}

	// Checksum the full reconstructed body (what the peer must end up
	// holding) chunk by chunk — CRC32-C, hardware-assisted.
	var crc uint32
	for c := tpl.buf.Head(); c != nil; c = c.Next() {
		crc = wire.DeltaCRCUpdate(crc, c.Bytes())
	}

	// Lay the frame header and all region headers into one scratch
	// buffer first (so later appends cannot move earlier subslices),
	// then assemble the gather vector.
	hdrLen := wire.DeltaHeaderLen + len(regs)*wire.DeltaRegionHeaderLen
	if cap(sc.delta) < hdrLen {
		sc.delta = make([]byte, 0, hdrLen+hdrLen/2)
	}
	d := sc.delta[:0]
	d = wire.AppendDeltaHeader(d, tpl.deltaID, baseEpoch, tpl.deltaEpoch, bodyLen, crc, len(regs))
	for i := range regs {
		d = wire.AppendDeltaRegionHeader(d, regs[i].abs, regs[i].hi-regs[i].lo)
	}
	sc.delta = d

	bufs := sc.bufs[:0]
	bufs = append(bufs, d[:wire.DeltaHeaderLen])
	p := wire.DeltaHeaderLen
	for i := range regs {
		bufs = append(bufs, d[p:p+wire.DeltaRegionHeaderLen], regs[i].c.Bytes()[regs[i].lo:regs[i].hi])
		p += wire.DeltaRegionHeaderLen
	}
	sc.bufs = bufs
	ci.WireBytes = frameLen
	return true
}
