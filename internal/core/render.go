package core

import (
	"bsoap/internal/fastconv"
	"bsoap/internal/soapenv"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// flatRenderer serializes a message from scratch into one reusable flat
// buffer — the DisableDiff ("bSOAP Full Serialization") path. It is the
// same single-pass strategy as the gSOAP baseline: no template, no DUT
// table, so the measured comparison between the two modes isolates
// differential serialization itself.
type flatRenderer struct {
	buf []byte
}

// render serializes m, reusing the renderer's buffer.
func (r *flatRenderer) render(m *wire.Message) []byte {
	b := r.buf[:0]
	b = append(b, soapenv.EnvelopeStart(m.Namespace())...)
	b = append(b, soapenv.OperationStart(m.Operation())...)
	leaf := 0
	for _, p := range m.Params() {
		switch p.Type.Kind {
		case wire.Array:
			b = append(b, soapenv.ArrayStart(p.Name, p.Type.Elem, p.Count)...)
			for i := 0; i < p.Count; i++ {
				b, leaf = renderValue(b, m, p.Type.Elem, soapenv.ItemTag, leaf)
			}
			b = append(b, soapenv.ArrayEnd(p.Name)...)
		case wire.Struct:
			b = append(b, soapenv.StructStart(p.Name, p.Type)...)
			for _, f := range p.Type.Fields {
				b, leaf = renderValue(b, m, f.Type, f.Name, leaf)
			}
			b = append(b, soapenv.CloseTag(p.Name)...)
		default:
			b = append(b, soapenv.ScalarStart(p.Name, p.Type)...)
			b, leaf = renderScalar(b, m, p.Type, leaf)
			b = append(b, soapenv.CloseTag(p.Name)...)
		}
	}
	b = append(b, soapenv.OperationEnd(m.Operation())...)
	b = append(b, soapenv.EnvelopeEnd...)
	r.buf = b
	return b
}

func renderValue(b []byte, m *wire.Message, t *wire.Type, tag string, leaf int) ([]byte, int) {
	b = append(b, '<')
	b = append(b, tag...)
	b = append(b, '>')
	if t.Kind == wire.Struct {
		for _, f := range t.Fields {
			b, leaf = renderValue(b, m, f.Type, f.Name, leaf)
		}
	} else {
		b, leaf = renderScalar(b, m, t, leaf)
	}
	b = append(b, '<', '/')
	b = append(b, tag...)
	b = append(b, '>')
	return b, leaf
}

func renderScalar(b []byte, m *wire.Message, t *wire.Type, leaf int) ([]byte, int) {
	switch t.Kind {
	case wire.Int:
		var tmp [xsdlex.MaxIntWidth]byte
		n := fastconv.WriteInt(tmp[:], m.LeafInt(leaf))
		b = append(b, tmp[:n]...)
	case wire.Double:
		var tmp [xsdlex.MaxDoubleWidth]byte
		n := fastconv.WriteDouble(tmp[:], m.LeafDouble(leaf))
		b = append(b, tmp[:n]...)
	case wire.Bool:
		b = xsdlex.AppendBool(b, m.LeafBool(leaf))
	case wire.String:
		b = xsdlex.EscapeText(b, m.LeafString(leaf))
	}
	return b, leaf + 1
}
