package core

import (
	"errors"
	"net"
	"strings"
	"testing"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
	"bsoap/internal/xmlparse"
	"bsoap/internal/xsdlex"
)

// captureSink records everything sent through it.
type captureSink struct {
	data  []byte
	calls int
	fail  error
}

func (c *captureSink) Send(bufs net.Buffers) error {
	if c.fail != nil {
		return c.fail
	}
	c.calls++
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

// leafTexts extracts, in document order, the trimmed character data of
// every element that has no element children — exactly the scalar leaves
// of our wire format.
func leafTexts(t *testing.T, doc []byte) []string {
	t.Helper()
	p := xmlparse.NewParser(doc)
	var out []string
	type frame struct {
		text     strings.Builder
		children int
	}
	var stack []*frame
	for {
		tok, err := p.Next()
		if err != nil {
			t.Fatalf("parse: %v\ndoc: %.2000s", err, doc)
		}
		switch tok.Kind {
		case xmlparse.EOF:
			return out
		case xmlparse.StartElement:
			if len(stack) > 0 {
				stack[len(stack)-1].children++
			}
			stack = append(stack, &frame{})
		case xmlparse.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(tok.Text)
			}
		case xmlparse.EndElement:
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.children == 0 {
				out = append(out, xsdlex.TrimSpace(f.text.String()))
			}
		}
	}
}

// expectedLeaves renders the canonical lexical form of every leaf of m.
func expectedLeaves(m *wire.Message) []string {
	out := make([]string, m.NumLeaves())
	for i := range out {
		switch m.LeafType(i).Kind {
		case wire.Int:
			out[i] = string(xsdlex.AppendInt(nil, m.LeafInt(i)))
		case wire.Double:
			out[i] = string(xsdlex.AppendDouble(nil, m.LeafDouble(i)))
		case wire.Bool:
			out[i] = string(xsdlex.AppendBool(nil, m.LeafBool(i)))
		case wire.String:
			out[i] = m.LeafString(i)
		}
	}
	return out
}

// checkRendered verifies the sink's last message parses to exactly the
// message's values.
func checkRendered(t *testing.T, m *wire.Message, doc []byte) {
	t.Helper()
	got := leafTexts(t, doc)
	want := expectedLeaves(m)
	if len(got) != len(want) {
		t.Fatalf("rendered %d leaves, message has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leaf %d: rendered %q, want %q", i, got[i], want[i])
		}
	}
}

// checkTemplate asserts the internal invariants of the stub's template.
func checkTemplate(t *testing.T, s *Stub, m *wire.Message) {
	t.Helper()
	tpl := s.Template(m.Operation(), m.Signature())
	if tpl == nil {
		t.Fatal("no template stored")
	}
	tpl.Buffer().CheckInvariants()
	tpl.Table().CheckInvariants()
}

func mioType() *wire.Type {
	return wire.StructOf("ns1:MIO",
		wire.Field{Name: "x", Type: wire.TInt},
		wire.Field{Name: "y", Type: wire.TInt},
		wire.Field{Name: "value", Type: wire.TDouble},
	)
}

func TestFirstTimeSendRendersAllTypes(t *testing.T) {
	m := wire.NewMessage("urn:bsoap-test", "mixed")
	m.AddInt("count", -42)
	m.AddDouble("ratio", 2.5)
	m.AddString("name", "a<b&c")
	m.AddBool("flag", true)
	st := m.AddStruct("mio", mioType())
	st.SetInt(0, 1)
	st.SetInt(1, 2)
	st.SetDouble(2, 3.5)
	arr := m.AddDoubleArray("vec", 5)
	for i := 0; i < 5; i++ {
		arr.Set(i, float64(i)*1.25)
	}

	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != FirstTime {
		t.Fatalf("match = %v", ci.Match)
	}
	if ci.Bytes != len(sink.data) {
		t.Fatalf("ci.Bytes = %d, sink got %d", ci.Bytes, len(sink.data))
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
	if m.AnyDirty() {
		t.Fatal("dirty bits survive a successful send")
	}
	doc := string(sink.data)
	for _, want := range []string{
		`<?xml version="1.0" encoding="UTF-8"?>`,
		`<SOAP-ENV:Envelope`,
		`xmlns:ns1="urn:bsoap-test"`,
		`<ns1:mixed>`,
		`<count xsi:type="xsd:int">-42</count>`,
		`SOAP-ENC:arrayType="xsd:double[5]"`,
		`a&lt;b&amp;c`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("rendered message missing %q", want)
		}
	}
}

func TestMessageContentMatch(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 100)
	for i := 0; i < 100; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), sink.data...)

	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != ContentMatch {
		t.Fatalf("second send match = %v, want ContentMatch", ci.Match)
	}
	if ci.ValuesRewritten != 0 {
		t.Fatalf("content match rewrote %d values", ci.ValuesRewritten)
	}
	if string(sink.data) != string(first) {
		t.Fatal("content match bytes differ from first send")
	}
}

func TestPerfectStructuralMatch(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 10)
	for i := 0; i < 10; i++ {
		arr.Set(i, 1.5) // 3 chars
	}
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}

	arr.Set(3, 2.5) // same width: in-place overwrite
	arr.Set(7, 9.5)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != StructuralMatch {
		t.Fatalf("match = %v", ci.Match)
	}
	if ci.ValuesRewritten != 2 {
		t.Fatalf("rewrote %d values, want 2", ci.ValuesRewritten)
	}
	if ci.Shifts != 0 || ci.TagShifts != 0 {
		t.Fatalf("unexpected shifts: %+v", ci)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
}

func TestClosingTagShiftOnShrink(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 3)
	arr.Set(0, 123456.0) // 6 chars
	arr.Set(1, 123456.0)
	arr.Set(2, 123456.0)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}

	arr.Set(1, 1) // 1 char: tag must move left, pad with whitespace
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != StructuralMatch || ci.TagShifts != 1 {
		t.Fatalf("ci = %+v", ci)
	}
	if !strings.Contains(string(sink.data), "<item>1</item>     <item>") {
		t.Fatalf("expected padded shrink, got %q", sink.data)
	}
	checkRendered(t, m, sink.data)
}

func TestShiftingOnGrowth(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 20)
	for i := 0; i < 20; i++ {
		arr.Set(i, 1) // minimal width
	}
	sink := &captureSink{}
	s := NewStub(Config{}, sink) // exact widths: growth must shift
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}

	arr.Set(5, -1.7976931348623157e+308) // maximal 24-char double
	arr.Set(12, 123.456)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != PartialMatch {
		t.Fatalf("match = %v", ci.Match)
	}
	if ci.Shifts != 2 {
		t.Fatalf("shifts = %d, want 2", ci.Shifts)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)

	// Shrinking back must also stay correct (closing-tag shifts).
	arr.Set(5, 2)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
}

func TestStuffingMaxWidthAvoidsShifting(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 10)
	for i := 0; i < 10; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	s := NewStub(Config{Width: WidthPolicy{Double: MaxWidth}}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}

	arr.Set(0, -1.7976931348623157e+308)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != StructuralMatch || ci.Shifts != 0 {
		t.Fatalf("stuffed growth shifted: %+v", ci)
	}
	checkRendered(t, m, sink.data)
}

func TestIntermediateWidthStuffing(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 4)
	for i := 0; i < 4; i++ {
		arr.Set(i, 5)
	}
	sink := &captureSink{}
	s := NewStub(Config{Width: WidthPolicy{Double: 18}}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	// A value of up to 18 chars fits without shifting.
	arr.Set(0, 0.1234567890123456) // 18 chars
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != 0 {
		t.Fatalf("18-char value shifted in 18-wide field: %+v", ci)
	}
	// A 24-char value must shift.
	arr.Set(1, -1.7976931348623157e+308)
	ci, err = s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != 1 {
		t.Fatalf("24-char value into 18-wide field: %+v", ci)
	}
	checkRendered(t, m, sink.data)
}

func TestStealingFromNeighbour(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 4)
	for i := 0; i < 4; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	// Stuff to 10 so neighbours have pad to donate; enable stealing.
	s := NewStub(Config{Width: WidthPolicy{Double: 10}, EnableStealing: true}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}

	arr.Set(0, 1.234567890123) // 15 chars: needs 5 beyond width 10
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Steals != 1 || ci.Shifts != 0 {
		t.Fatalf("expected one steal, got %+v", ci)
	}
	if ci.Match != PartialMatch {
		t.Fatalf("match = %v", ci.Match)
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)

	// The donor's remaining pad still absorbs its own growth.
	arr.Set(1, 12.25) // 5 chars, fits width 10-5=5
	ci, err = s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != 0 && ci.Steals != 0 {
		t.Fatalf("donor growth misbehaved: %+v", ci)
	}
	checkRendered(t, m, sink.data)
}

func TestStealingFallsBackToShifting(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 4)
	for i := 0; i < 4; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	// Exact widths: no neighbour has pad, stealing cannot help.
	s := NewStub(Config{EnableStealing: true}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	arr.Set(0, 123.456)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Steals != 0 || ci.Shifts != 1 {
		t.Fatalf("expected shift fallback, got %+v", ci)
	}
	checkRendered(t, m, sink.data)
}

func TestChunkSplittingUnderWorstCaseGrowth(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	n := 600
	arr := m.AddDoubleArray("v", n)
	for i := 0; i < n; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	s := NewStub(Config{
		Chunk: chunk.Config{ChunkSize: 1024, SplitThreshold: 2048, TrailingSlack: 64},
	}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	// Worst case: every value grows from 1 to 24 characters.
	for i := 0; i < n; i++ {
		arr.Set(i, -1.7976931348623157e+308)
	}
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != n {
		t.Fatalf("shifts = %d, want %d", ci.Shifts, n)
	}
	if ci.Splits == 0 {
		t.Fatal("worst-case growth with small chunks never split")
	}
	checkRendered(t, m, sink.data)
	checkTemplate(t, s, m)
}

func TestRebindDifferentMessageSameStructure(t *testing.T) {
	build := func(seed float64) *wire.Message {
		m := wire.NewMessage("urn:t", "send")
		arr := m.AddDoubleArray("v", 8)
		for i := 0; i < 8; i++ {
			arr.Set(i, seed+float64(i))
		}
		return m
	}
	m1 := build(1)
	m2 := build(100)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m1); err != nil {
		t.Fatal(err)
	}
	ci, err := s.Call(m2)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != StructuralMatch && ci.Match != PartialMatch {
		t.Fatalf("match = %v", ci.Match)
	}
	if ci.ValuesRewritten != 8 {
		t.Fatalf("rebind rewrote %d values, want all 8", ci.ValuesRewritten)
	}
	checkRendered(t, m2, sink.data)
	if s.Store().TemplateCount() != 1 {
		t.Fatalf("templates = %d, want 1 (reused)", s.Store().TemplateCount())
	}
}

func TestResizeCreatesNewTemplate(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 5)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	arr.Resize(9)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != FirstTime {
		t.Fatalf("resized send match = %v, want FirstTime", ci.Match)
	}
	checkRendered(t, m, sink.data)
	if s.Store().TemplateCount() != 2 {
		t.Fatalf("templates = %d, want 2", s.Store().TemplateCount())
	}

	// Returning to the original size reuses the old template.
	arr.Resize(5)
	ci, err = s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match == FirstTime {
		t.Fatal("old template not reused after resize back")
	}
	checkRendered(t, m, sink.data)
}

func TestTemplateLRUEviction(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 1)
	sink := &captureSink{}
	s := NewStub(Config{MaxTemplatesPerOp: 2}, sink)
	for _, n := range []int{1, 2, 3} {
		arr.Resize(n)
		if _, err := s.Call(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Store().TemplateCount(); got != 2 {
		t.Fatalf("templates = %d, want 2 after eviction", got)
	}
	// Size 1 was evicted; sending it again is a first-time send.
	arr.Resize(1)
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != FirstTime {
		t.Fatalf("evicted structure match = %v", ci.Match)
	}
}

func TestDisableDiff(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 10)
	for i := 0; i < 10; i++ {
		arr.Set(i, float64(i))
	}
	sink := &captureSink{}
	s := NewStub(Config{DisableDiff: true}, sink)
	for k := 0; k < 3; k++ {
		ci, err := s.Call(m)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Match != FullSerialization {
			t.Fatalf("match = %v", ci.Match)
		}
		checkRendered(t, m, sink.data)
	}
	if s.Store().TemplateCount() != 0 {
		t.Fatal("diff-disabled stub stored templates")
	}
}

func TestSendErrorPreservesDirtyBits(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 4)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	arr.Set(2, 42)
	sink.fail = errors.New("link down")
	if _, err := s.Call(m); err == nil {
		t.Fatal("send error not propagated")
	}
	if !m.AnyDirty() {
		t.Fatal("dirty bits cleared despite failed send")
	}
	sink.fail = nil
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	// The failed send poisoned the template, so the retry is a degraded
	// first-time send carrying the preserved change — not a diff against
	// bytes whose delivery state is unknown.
	if ci.Match != FirstTime || !ci.Degraded {
		t.Fatalf("retry: match=%v degraded=%v, want degraded first-time", ci.Match, ci.Degraded)
	}
	checkRendered(t, m, sink.data)
}

func TestSharedStoreAcrossStubs(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 16)
	for i := 0; i < 16; i++ {
		arr.Set(i, float64(i))
	}
	store := NewStore(4)
	sinkA, sinkB := &captureSink{}, &captureSink{}
	a := NewStubWithStore(Config{}, sinkA, store)
	b := NewStubWithStore(Config{}, sinkB, store)

	if _, err := a.Call(m); err != nil {
		t.Fatal(err)
	}
	// The second destination reuses the template serialized for the
	// first: a content match, not a first-time send (paper §6).
	ci, err := b.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Match != ContentMatch {
		t.Fatalf("shared-store second stub match = %v", ci.Match)
	}
	if string(sinkA.data) != string(sinkB.data) {
		t.Fatal("stubs sent different bytes from shared template")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	arr := m.AddDoubleArray("v", 4)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	s.Call(m)
	s.Call(m)
	arr.Set(0, 7)
	s.Call(m)
	st := s.Stats()
	if st.Calls != 3 || st.FirstTimeSends != 1 || st.ContentMatches != 1 || st.StructuralMatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent == 0 || st.ValuesRewritten != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMatchKindString(t *testing.T) {
	for k, want := range map[MatchKind]string{
		FirstTime:         "first-time send",
		ContentMatch:      "message content match",
		StructuralMatch:   "perfect structural match",
		PartialMatch:      "partial structural match",
		FullSerialization: "full serialization",
		MatchKind(99):     "unknown match",
	} {
		if k.String() != want {
			t.Errorf("MatchKind(%d).String() = %q", int(k), k.String())
		}
	}
}

func TestMIOArrayEndToEnd(t *testing.T) {
	m := wire.NewMessage("urn:t", "sendMIOs")
	arr := m.AddStructArray("mios", mioType(), 50)
	for i := 0; i < 50; i++ {
		arr.SetInt(i, 0, int32(i))
		arr.SetInt(i, 1, int32(i*2))
		arr.SetDouble(i, 2, float64(i)+0.25)
	}
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)

	// Re-serialize only the doubles, as Figure 4 does.
	for i := 0; i < 50; i += 2 {
		arr.SetDouble(i, 2, float64(i)+0.75)
	}
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.ValuesRewritten != 25 {
		t.Fatalf("rewrote %d, want 25", ci.ValuesRewritten)
	}
	checkRendered(t, m, sink.data)
}

func TestStringGrowthShifts(t *testing.T) {
	m := wire.NewMessage("urn:t", "send")
	sref := m.AddString("s", "short")
	m.AddInt("after", 7)
	sink := &captureSink{}
	s := NewStub(Config{}, sink)
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	sref.Set("a much longer string value <with> markup & entities")
	ci, err := s.Call(m)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Shifts != 1 {
		t.Fatalf("string growth: %+v", ci)
	}
	checkRendered(t, m, sink.data)
	sref.Set("tiny")
	if _, err := s.Call(m); err != nil {
		t.Fatal(err)
	}
	checkRendered(t, m, sink.data)
}
