package core

import (
	"math"
	"math/rand"
	"testing"

	"bsoap/internal/chunk"
	"bsoap/internal/wire"
)

// TestGoldenEquivalence is the load-bearing property of the whole
// system: for random message schemas and random mutate/send sequences,
// under every width policy and chunk configuration, with stealing on and
// off, the bytes produced by the differential path must always parse to
// exactly the message's current values.
func TestGoldenEquivalence(t *testing.T) {
	configs := []Config{
		{},
		{Width: WidthPolicy{Double: MaxWidth, Int: MaxWidth}},
		{Width: WidthPolicy{Double: 18, Int: 6}},
		{EnableStealing: true},
		{Width: WidthPolicy{Double: 10}, EnableStealing: true},
		{Chunk: chunk.Config{ChunkSize: 256, SplitThreshold: 512, TrailingSlack: 32}},
		{Chunk: chunk.Config{ChunkSize: 128, SplitThreshold: 200, TrailingSlack: 16}, EnableStealing: true},
	}
	for ci, cfg := range configs {
		cfg := cfg
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		for trial := 0; trial < 6; trial++ {
			m, mutators := randomMessage(rng)
			sink := &captureSink{}
			s := NewStub(cfg, sink)
			for send := 0; send < 12; send++ {
				// Random batch of mutations (possibly none).
				for k := rng.Intn(8); k > 0; k-- {
					mutators[rng.Intn(len(mutators))](rng)
				}
				if _, err := s.Call(m); err != nil {
					t.Fatalf("config %d trial %d send %d: %v", ci, trial, send, err)
				}
				checkRendered(t, m, sink.data)
				checkTemplate(t, s, m)
			}
		}
	}
}

// randomMessage builds a message with a random mix of parameters and
// returns mutator closures that change random values through the Set
// accessors.
func randomMessage(rng *rand.Rand) (*wire.Message, []func(*rand.Rand)) {
	m := wire.NewMessage("urn:prop", "op")
	var muts []func(*rand.Rand)

	nParams := rng.Intn(4) + 1
	for p := 0; p < nParams; p++ {
		switch rng.Intn(5) {
		case 0:
			r := m.AddInt("i", int32(rng.Intn(100)))
			muts = append(muts, func(rng *rand.Rand) { r.Set(randInt(rng)) })
		case 1:
			r := m.AddDouble("d", randDouble(rng))
			muts = append(muts, func(rng *rand.Rand) { r.Set(randDouble(rng)) })
		case 2:
			n := rng.Intn(40) + 1
			r := m.AddDoubleArray("da", n)
			for i := 0; i < n; i++ {
				r.Set(i, randDouble(rng))
			}
			muts = append(muts, func(rng *rand.Rand) { r.Set(rng.Intn(n), randDouble(rng)) })
		case 3:
			n := rng.Intn(40) + 1
			r := m.AddIntArray("ia", n)
			muts = append(muts, func(rng *rand.Rand) { r.Set(rng.Intn(n), randInt(rng)) })
		case 4:
			mio := wire.StructOf("ns1:MIO",
				wire.Field{Name: "x", Type: wire.TInt},
				wire.Field{Name: "y", Type: wire.TInt},
				wire.Field{Name: "value", Type: wire.TDouble},
			)
			n := rng.Intn(20) + 1
			r := m.AddStructArray("ma", mio, n)
			muts = append(muts, func(rng *rand.Rand) {
				i := rng.Intn(n)
				switch rng.Intn(3) {
				case 0:
					r.SetInt(i, 0, randInt(rng))
				case 1:
					r.SetInt(i, 1, randInt(rng))
				default:
					r.SetDouble(i, 2, randDouble(rng))
				}
			})
		}
	}
	m.ClearDirty()
	return m, muts
}

// randInt favours extreme widths so shifting and tag shifts both occur.
func randInt(rng *rand.Rand) int32 {
	switch rng.Intn(4) {
	case 0:
		return int32(rng.Intn(10)) // 1 char
	case 1:
		return math.MinInt32 // 11 chars
	case 2:
		return int32(rng.Uint32())
	default:
		return int32(rng.Intn(100000) - 50000)
	}
}

// randDouble mixes 1-char, mid-size and maximal 24-char encodings, plus
// the XSD special values.
func randDouble(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return float64(rng.Intn(10)) // 1 char
	case 1:
		return -math.MaxFloat64 // 24 chars
	case 2:
		return math.Inf(1)
	case 3:
		return rng.NormFloat64() * 1e5
	case 4:
		return rng.Float64()
	default:
		return math.Float64frombits(rng.Uint64()) // anything, incl. NaN
	}
}
