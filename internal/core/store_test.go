package core

import (
	"fmt"
	"sync"
	"testing"

	"bsoap/internal/wire"
)

// TestStoreConcurrentAccess exercises the documented guarantee that
// Store's own methods are safe for concurrent use: goroutines hammer
// lookup, insert and TemplateCount on one shared Store under the race
// detector. (Template mutation stays single-goroutine here, matching
// the documented contract.)
func TestStoreConcurrentAccess(t *testing.T) {
	st := NewStore(4)
	cfg := Config{}.withDefaults()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				op := fmt.Sprintf("op%d", i%5)
				// A worker-specific array length yields a distinct
				// signature, so inserts and LRU evictions interleave.
				m := wire.NewMessage("urn:t", op)
				arr := m.AddDoubleArray("v", 1+(w+i)%7)
				arr.Set(0, float64(i))
				m.ClearDirty()
				if st.lookup(op, m.Signature()) == nil {
					st.insert(op, newTemplate(m, cfg, new(scratch)))
				}
				if n := st.TemplateCount(); n < 0 {
					t.Errorf("negative template count %d", n)
				}
			}
		}(w)
	}
	wg.Wait()

	// 5 operations, capacity 4 each: the store can never exceed 20.
	if n := st.TemplateCount(); n == 0 || n > 20 {
		t.Fatalf("TemplateCount = %d, want 1..20", n)
	}
}

// TestStoreLookupMovesToFront pins the LRU behaviour the pool relies on
// (least recently used templates are the ones evicted), now under the
// locked implementation.
func TestStoreLookupMovesToFront(t *testing.T) {
	st := NewStore(2)
	cfg := Config{}.withDefaults()

	mk := func(n int) *wire.Message {
		m := wire.NewMessage("urn:t", "op")
		m.AddDoubleArray("v", n)
		m.ClearDirty()
		return m
	}
	a, b, c := mk(1), mk(2), mk(3)
	st.insert("op", newTemplate(a, cfg, new(scratch)))
	st.insert("op", newTemplate(b, cfg, new(scratch)))

	// Touch a so b becomes the LRU victim when c arrives.
	if st.lookup("op", a.Signature()) == nil {
		t.Fatal("template for a missing")
	}
	st.insert("op", newTemplate(c, cfg, new(scratch)))

	if st.lookup("op", b.Signature()) != nil {
		t.Error("b should have been evicted as least recently used")
	}
	if st.lookup("op", a.Signature()) == nil || st.lookup("op", c.Signature()) == nil {
		t.Error("a and c should have survived")
	}
}
