// Package harness is the shared scaffolding of the integration suites:
// the recording conformance server, the serverpool "bench" runtime that
// acknowledges every workload operation, and pooled clients wired for
// RPC responses — previously duplicated across the root-level
// conformance, serverpool and steady-state tests.
//
// (The natural name for this package is taken: internal/dut is the
// paper's Data Update Tracking table, so the test scaffolding lives
// under harness instead.)
//
// Constructors take a testing.TB and register their teardown with
// Cleanup, so suites compose pieces without managing lifetimes. The
// returned types are the real runtime types (pool.Pool, transport
// .Server) — bsoap's public aliases point at the same types, so
// root-level tests hand bsoap.PoolOptions straight in.
package harness

import (
	"testing"
	"time"

	"bsoap/internal/core"
	"bsoap/internal/faultwire"
	"bsoap/internal/pool"
	"bsoap/internal/server"
	"bsoap/internal/serverpool"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

// Recorder builds a recording server (every accepted body retained for
// byte-conformance checks) and a pooled client dialed at it. When inj is
// non-nil, every client connection runs through the fault injector and
// the pool's metrics report its fault count.
func Recorder(tb testing.TB, inj *faultwire.Injector, opts pool.Options) (*server.Recorder, *pool.Pool) {
	tb.Helper()
	rec := server.NewRecorder(0)
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler:   rec.HTTPHandler(),
		Respond:   true,
		ReadAhead: readAheadFor(opts),
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.Close() })

	opts.Addr = srv.Addr()
	if inj != nil {
		opts.Sender.Dialer = inj.Dial(opts.Sender.Dialer)
	}
	p := Pool(tb, opts)
	if inj != nil {
		p.Metrics().SetFaultSource(inj.Faults)
	}
	return rec, p
}

// readAheadFor matches the server's read-ahead window to the client's
// pipeline depth, so pipelined suites exercise server-side read-ahead
// too (a serial client leaves it zero: same wire behaviour either way).
func readAheadFor(opts pool.Options) int {
	if opts.PipelineDepth > 0 {
		return opts.PipelineDepth
	}
	return 0
}

// BenchRuntime builds a serverpool runtime acknowledging all three
// workload operations (sendDoubles, sendInts, sendMIOs — the same
// registry bsoap-server -mode bench serves), plus the transport server
// carrying it.
func BenchRuntime(tb testing.TB, opts serverpool.Options, sopts transport.ServerOptions) (*serverpool.Runtime, *transport.Server) {
	tb.Helper()
	rt := serverpool.New(opts)
	ack := func(respOp string) serverpool.HandlerFactory {
		return func() serverpool.Handler {
			resp := wire.NewMessage(workload.Namespace, respOp)
			n := resp.AddInt("n", 0)
			return func(req *wire.Message) (*wire.Message, error) {
				n.Set(int32(req.NumLeaves()))
				return resp, nil
			}
		}
	}
	rt.Register(&soapdec.Schema{
		Namespace: workload.Namespace, Op: "sendDoubles",
		Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}, ack("sendDoublesResponse"))
	rt.Register(&soapdec.Schema{
		Namespace: workload.Namespace, Op: "sendInts",
		Params: []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TInt)}},
	}, ack("sendIntsResponse"))
	rt.Register(&soapdec.Schema{
		Namespace: workload.Namespace, Op: "sendMIOs",
		Params: []soapdec.ParamSpec{{Name: "mios", Type: wire.ArrayOf(workload.MIOType())}},
	}, ack("sendMIOsResponse"))

	sopts.Handler = rt.HTTPHandler()
	sopts.Respond = true
	srv, err := transport.Listen("127.0.0.1:0", sopts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.Close() })
	return rt, srv
}

// Pool builds a pooled client from opts with the suites' defaults
// filled in: RPC responses expected (a dropped response surfaces as a
// call error) and 5s socket timeouts. opts.Addr must be set.
func Pool(tb testing.TB, opts pool.Options) *pool.Pool {
	tb.Helper()
	opts.Sender.ExpectResponse = true
	if opts.Sender.WriteTimeout == 0 {
		opts.Sender.WriteTimeout = 5 * time.Second
	}
	if opts.Sender.ReadTimeout == 0 {
		opts.Sender.ReadTimeout = 5 * time.Second
	}
	p, err := pool.New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	return p
}

// ClientPool is Pool with the single-connection defaults the serverpool
// suites use.
func ClientPool(tb testing.TB, addr string) *pool.Pool {
	tb.Helper()
	return Pool(tb, pool.Options{Size: 1, Addr: addr})
}

// DiscardPool builds a pool whose connections all feed one shared
// in-process discard sink: the serialization-side scaffolding of the
// steady-state allocation gates and throughput benchmarks.
func DiscardPool(tb testing.TB, opts pool.Options) (*pool.Pool, *transport.DiscardSink) {
	tb.Helper()
	sink := transport.NewDiscardSink()
	opts.Dial = func() (core.Sink, error) { return sink, nil }
	p, err := pool.New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	return p, sink
}
