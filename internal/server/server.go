// Package server is the SOAP service endpoint: it dispatches incoming
// envelopes to registered operations, deserializing either with a full
// schema-driven parse or — when enabled — with differential
// deserialization, and serializes responses through a differential stub
// so repeated similar responses benefit exactly as client sends do (the
// paper notes the technique "could be used equally well by a server
// sending identical (or similar) responses").
package server

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"bsoap/internal/core"
	"bsoap/internal/diffdeser"
	"bsoap/internal/multiref"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
	"bsoap/internal/xsdlex"
)

// Handler processes one decoded request message and returns a response
// message, or nil for one-way operations. The request message is owned
// by the server and valid only for the duration of the call.
type Handler func(req *wire.Message) (*wire.Message, error)

// Options configure a SOAP endpoint.
type Options struct {
	// DifferentialDeserialization enables the diffdeser fast path.
	DifferentialDeserialization bool
	// Core configures the response-side differential stub.
	Core core.Config
}

// SOAP routes operations to handlers. Dispatch is serialized by an
// internal lock, so one endpoint can back a multi-connection
// transport.Server.
type SOAP struct {
	mu      sync.Mutex
	ops     map[string]*operation
	differ  *diffdeser.Deserializer
	wsdl    []byte
	respBuf bytes.Buffer
	stub    *core.Stub
	stats   ServerStats
}

type operation struct {
	schema  *soapdec.Schema
	handler Handler
}

// ServerStats counts decode outcomes.
type ServerStats struct {
	Requests        int64
	FullParses      int64
	DiffDecodes     int64
	ValuesReparsed  int64
	MultiRefInlined int64
}

// New returns an empty endpoint.
func New(opts Options) *SOAP {
	s := &SOAP{ops: make(map[string]*operation)}
	if opts.DifferentialDeserialization {
		s.differ = diffdeser.New(s.lookupSchema)
	}
	s.stub = core.NewStub(opts.Core, transport.WriterSink{W: &s.respBuf})
	return s
}

// Register adds an operation.
func (s *SOAP) Register(schema *soapdec.Schema, h Handler) {
	s.ops[schema.Op] = &operation{schema: schema, handler: h}
}

// Stats returns decode counters.
func (s *SOAP) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *SOAP) lookupSchema(opLocal string) (*soapdec.Schema, bool) {
	op, ok := s.ops[opLocal]
	if !ok {
		return nil, false
	}
	return op.schema, true
}

// SetWSDL installs the service description served on GET requests.
func (s *SOAP) SetWSDL(doc []byte) {
	s.mu.Lock()
	s.wsdl = append([]byte(nil), doc...)
	s.mu.Unlock()
}

// HTTPHandler adapts the endpoint to the transport server: POSTs are
// dispatched as SOAP calls, GETs answered with the WSDL document when
// one has been installed.
func (s *SOAP) HTTPHandler() transport.Handler {
	return func(req *transport.Request) ([]byte, error) {
		if req.Method == "GET" {
			s.mu.Lock()
			doc := s.wsdl
			s.mu.Unlock()
			if doc == nil {
				return nil, fmt.Errorf("server: no WSDL installed")
			}
			return doc, nil
		}
		return s.Handle(req.Body)
	}
}

// Handle decodes one envelope, dispatches it, and returns the serialized
// response (nil for one-way operations). Requests carrying SOAP
// multi-ref accessors are inlined first (gSOAP-compatible clients).
func (s *SOAP) Handle(body []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++

	if multiref.HasRefs(body) {
		inlined, err := multiref.Inline(body)
		if err != nil {
			return nil, fmt.Errorf("server: multi-ref: %w", err)
		}
		body = inlined
		s.stats.MultiRefInlined++
	}

	var msg *wire.Message
	var err error
	if s.differ != nil {
		var info diffdeser.Info
		// Key by operation: the fast path matches same-shaped repeats.
		opLocal, perr := PeekOperation(body)
		if perr != nil {
			return nil, perr
		}
		msg, info, err = s.differ.Decode(opLocal, body)
		if err != nil {
			return nil, fmt.Errorf("server: decode: %w", err)
		}
		if info.FullParse {
			s.stats.FullParses++
		} else {
			s.stats.DiffDecodes++
			s.stats.ValuesReparsed += int64(info.ValuesReparsed)
		}
	} else {
		res, derr := soapdec.Decode(body, s.lookupSchema, false)
		if derr != nil {
			return nil, fmt.Errorf("server: decode: %w", derr)
		}
		msg = res.Msg
		s.stats.FullParses++
	}

	op := s.ops[msg.Operation()]
	resp, err := op.handler(msg)
	if err != nil {
		return nil, fmt.Errorf("server: %s: %w", msg.Operation(), err)
	}
	if resp == nil {
		return nil, nil
	}

	// Serialize the response differentially: handlers that reuse a
	// response message object get structural/content matches.
	s.respBuf.Reset()
	if _, err := s.stub.Call(resp); err != nil {
		return nil, fmt.Errorf("server: response serialization: %w", err)
	}
	out := make([]byte, s.respBuf.Len())
	copy(out, s.respBuf.Bytes())
	return out, nil
}

// ResponseStats exposes the response stub's differential counters.
func (s *SOAP) ResponseStats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stub.Stats()
}

// PeekOperation extracts the operation's local name without a full
// parse: it scans for the first element inside <Body>. The serverpool
// runtime shares it to key differential-deserializer templates.
func PeekOperation(body []byte) (string, error) {
	var off int
	if idx := bytes.Index(body, []byte(":Body>")); idx >= 0 {
		off = idx + len(":Body>")
	} else if idx := bytes.Index(body, []byte("<Body>")); idx >= 0 {
		off = idx + len("<Body>")
	} else {
		return "", fmt.Errorf("server: no SOAP Body")
	}
	rest := body[off:]
	i := 0
	for i < len(rest) && xsdlex.IsSpace(rest[i]) {
		i++
	}
	if i >= len(rest) || rest[i] != '<' {
		return "", fmt.Errorf("server: no operation element")
	}
	i++
	start := i
	for i < len(rest) && rest[i] != '>' && rest[i] != ' ' && rest[i] != '/' {
		i++
	}
	name := string(rest[start:i])
	if c := strings.LastIndexByte(name, ':'); c >= 0 {
		name = name[c+1:]
	}
	if name == "" {
		return "", fmt.Errorf("server: no operation element")
	}
	return name, nil
}
