package server

import (
	"strings"
	"testing"

	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wsdl"
)

func TestWSDLServedOnGET(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	doc, err := wsdl.Generate(&wsdl.Service{
		Name:       "Calc",
		Namespace:  "urn:calc",
		Endpoint:   "http://example/",
		Operations: []*soapdec.Schema{sumSchema()},
	})
	if err != nil {
		t.Fatal(err)
	}
	endpoint.SetWSDL(doc)

	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := transport.Fetch(srv.Addr(), "/?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status %d", resp.Status)
	}
	svc, err := wsdl.Parse(resp.Body)
	if err != nil {
		t.Fatalf("served WSDL does not parse: %v", err)
	}
	if svc.Name != "Calc" || len(svc.Operations) != 1 || svc.Operations[0].Op != "sum" {
		t.Fatalf("recovered service: %+v", svc)
	}
	if !strings.Contains(string(resp.Body), "ArrayOfdouble") {
		t.Fatal("array type missing from served WSDL")
	}
}

func TestGETWithoutWSDLErrors(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	h := endpoint.HTTPHandler()
	if _, err := h(&transport.Request{Method: "GET", Target: "/"}); err == nil {
		t.Fatal("GET without installed WSDL succeeded")
	}
}
