package server

import (
	"net"
	"strings"
	"testing"

	"bsoap/internal/core"
	"bsoap/internal/soapdec"
	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

type captureSink struct{ data []byte }

func (c *captureSink) Send(bufs net.Buffers) error {
	c.data = c.data[:0]
	for _, b := range bufs {
		c.data = append(c.data, b...)
	}
	return nil
}

// sumSchema declares sum(values: double[]) -> sumResponse(total: double).
func sumSchema() *soapdec.Schema {
	return &soapdec.Schema{
		Namespace: "urn:calc",
		Op:        "sum",
		Params:    []soapdec.ParamSpec{{Name: "values", Type: wire.ArrayOf(wire.TDouble)}},
	}
}

// newSumEndpoint registers a sum operation that reuses one response
// message across calls (enabling response-side differential wins).
func newSumEndpoint(opts Options) (*SOAP, *wire.DoubleRef) {
	s := New(opts)
	resp := wire.NewMessage("urn:calc", "sumResponse")
	total := resp.AddDouble("total", 0)
	s.Register(sumSchema(), func(req *wire.Message) (*wire.Message, error) {
		var sum float64
		for i := 0; i < req.NumLeaves(); i++ {
			sum += req.LeafDouble(i)
		}
		total.Set(sum)
		return resp, nil
	})
	return s, &total
}

// request renders a sum request via a bSOAP stub.
func request(t *testing.T, stub *core.Stub, sink *captureSink, m *wire.Message) []byte {
	t.Helper()
	if _, err := stub.Call(m); err != nil {
		t.Fatal(err)
	}
	return sink.data
}

func TestHandleDecodesAndResponds(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	m := wire.NewMessage("urn:calc", "sum")
	arr := m.AddDoubleArray("values", 4)
	arr.Fill([]float64{1, 2, 3, 4.5})
	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)

	respBody, err := endpoint.Handle(request(t, stub, sink, m))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(respBody), ">10.5<") {
		t.Fatalf("response: %s", respBody)
	}
	st := endpoint.Stats()
	if st.Requests != 1 || st.FullParses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDifferentialDeserializationPath(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{DifferentialDeserialization: true})
	m := wire.NewMessage("urn:calc", "sum")
	arr := m.AddDoubleArray("values", 32)
	for i := 0; i < 32; i++ {
		arr.Set(i, 1)
	}
	sink := &captureSink{}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sink)

	if _, err := endpoint.Handle(request(t, stub, sink, m)); err != nil {
		t.Fatal(err)
	}
	arr.Set(3, 100)
	resp, err := endpoint.Handle(request(t, stub, sink, m))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), ">131<") { // 31*1 + 100
		t.Fatalf("response: %s", resp)
	}
	st := endpoint.Stats()
	if st.FullParses != 1 || st.DiffDecodes != 1 || st.ValuesReparsed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResponseDifferentialSerialization(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	m := wire.NewMessage("urn:calc", "sum")
	arr := m.AddDoubleArray("values", 2)
	arr.Fill([]float64{1.5, 2})
	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)

	// Two calls with the same request produce the same total: the
	// second response is a content match on the server's response stub.
	body := request(t, stub, sink, m)
	if _, err := endpoint.Handle(body); err != nil {
		t.Fatal(err)
	}
	if _, err := endpoint.Handle(body); err != nil {
		t.Fatal(err)
	}
	rs := endpoint.ResponseStats()
	if rs.FirstTimeSends != 1 || rs.ContentMatches != 1 {
		t.Fatalf("response stats: %+v", rs)
	}
}

func TestUnknownOperationErrors(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	m := wire.NewMessage("urn:calc", "nosuch")
	m.AddInt("x", 1)
	sink := &captureSink{}
	stub := core.NewStub(core.Config{}, sink)
	if _, err := endpoint.Handle(request(t, stub, sink, m)); err == nil {
		t.Fatal("unknown operation accepted")
	}
}

func TestMalformedBodyErrors(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{DifferentialDeserialization: true})
	if _, err := endpoint.Handle([]byte("not xml at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := endpoint.Handle([]byte("<a><b>no body</b></a>")); err == nil {
		t.Fatal("bodyless envelope accepted")
	}
}

func TestPeekOperation(t *testing.T) {
	cases := map[string]string{
		`<E:Envelope><E:Body><ns1:sum><v/></ns1:sum></E:Body></E:Envelope>`: "sum",
		`<E:Envelope><E:Body>` + "\n  " + `<op2/></E:Body></E:Envelope>`:    "op2",
	}
	for doc, want := range cases {
		got, err := PeekOperation([]byte(doc))
		if err != nil || got != want {
			t.Errorf("PeekOperation(%q) = %q, %v", doc, got, err)
		}
	}
	for _, doc := range []string{"", "<no-body/>", `<E:Body>`} {
		if _, err := PeekOperation([]byte(doc)); err == nil {
			t.Errorf("PeekOperation(%q) succeeded", doc)
		}
	}
}

// TestEndToEndOverTCP drives the full stack: bSOAP stub → HTTP sender →
// transport server → SOAP dispatch → differential deserialization →
// handler → response → client.
func TestEndToEndOverTCP(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{DifferentialDeserialization: true})
	srv, err := transport.Listen("127.0.0.1:0", transport.ServerOptions{
		Handler: endpoint.HTTPHandler(),
		Respond: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender, err := transport.Dial(srv.Addr(), transport.SenderOptions{
		Version:        transport.HTTP11,
		ExpectResponse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	m := wire.NewMessage("urn:calc", "sum")
	arr := m.AddDoubleArray("values", 16)
	for i := 0; i < 16; i++ {
		arr.Set(i, 2)
	}
	stub := core.NewStub(core.Config{Width: core.WidthPolicy{Double: core.MaxWidth}}, sender)

	for call := 0; call < 5; call++ {
		arr.Set(call, float64(call)) // small in-place updates
		if _, err := stub.Call(m); err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
	}
	st := endpoint.Stats()
	if st.Requests != 5 {
		t.Fatalf("server saw %d requests", st.Requests)
	}
	if st.DiffDecodes != 4 {
		t.Fatalf("diff decodes = %d, want 4 (stats %+v)", st.DiffDecodes, st)
	}
	// Call 2 wrote the value already present (2), so it is a content
	// match; the other updates are structural matches.
	cs := stub.Stats()
	if cs.FirstTimeSends != 1 || cs.StructuralMatches != 3 || cs.ContentMatches != 1 {
		t.Fatalf("client stats: %+v", cs)
	}
}
