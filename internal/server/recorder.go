package server

import (
	"sync"

	"bsoap/internal/transport"
)

// Recorder is a conformance-test endpoint: it keeps a verbatim copy of
// every request body the transport accepted, so a test can later prove
// that what the server received is byte-equivalent to a from-scratch
// serialization of the client's values. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	bodies  [][]byte
	limit   int
	dropped int64
}

// NewRecorder builds a recorder retaining at most limit bodies (<= 0
// means unbounded). Bodies beyond the limit are counted as dropped
// rather than silently lost.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// HTTPHandler adapts the recorder to the transport server. The handler
// returns no response body; run the transport with Respond: true so
// clients that expect a response get an empty 200.
func (r *Recorder) HTTPHandler() transport.Handler {
	return func(req *transport.Request) ([]byte, error) {
		body := make([]byte, len(req.Body))
		copy(body, req.Body)
		r.mu.Lock()
		if r.limit > 0 && len(r.bodies) >= r.limit {
			r.dropped++
		} else {
			r.bodies = append(r.bodies, body)
		}
		r.mu.Unlock()
		return nil, nil
	}
}

// Bodies returns a snapshot of the recorded request bodies, in arrival
// order.
func (r *Recorder) Bodies() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.bodies))
	copy(out, r.bodies)
	return out
}

// Count reports recorded bodies.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bodies)
}

// Dropped reports bodies discarded by the retention limit.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
