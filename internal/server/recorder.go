package server

import (
	"fmt"
	"sync"

	"bsoap/internal/transport"
	"bsoap/internal/wire"
)

// Recorder is a conformance-test endpoint: it keeps a verbatim copy of
// every request body the transport accepted, so a test can later prove
// that what the server received is byte-equivalent to a from-scratch
// serialization of the client's values. It speaks the differential
// transmission protocol: sync-annotated bodies are held as patch bases
// per (connection, template), patch frames are reconstructed against
// them — the recorded body is always the full reconstructed body, so
// delta conformance runs use the same byte oracle as full-body runs.
// Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	bodies  [][]byte
	limit   int
	dropped int64

	bases        map[recorderKey]*recorderBase
	deltaApplied int64
	deltaResyncs int64
}

// recorderKey scopes a patch base the way the client scopes its sync
// state: per connection, per template.
type recorderKey struct {
	conn uint64
	tid  uint64
}

type recorderBase struct {
	epoch uint64
	body  []byte
}

// NewRecorder builds a recorder retaining at most limit bodies (<= 0
// means unbounded). Bodies beyond the limit are counted as dropped
// rather than silently lost.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit, bases: make(map[recorderKey]*recorderBase)}
}

// HTTPHandler adapts the recorder to the transport server. The handler
// returns no response body; run the transport with Respond: true so
// clients that expect a response get an empty 200 (carrying the delta
// ack for sync-annotated requests; the transport turns a returned
// wire.ErrDeltaResync into the 409 resync the protocol requires).
func (r *Recorder) HTTPHandler() transport.Handler {
	return func(req *transport.Request) ([]byte, error) {
		body := req.Body
		r.mu.Lock()
		switch req.DeltaMode {
		case transport.DeltaPatch:
			reconstructed, err := r.applyDelta(req)
			if err != nil {
				r.deltaResyncs++
				r.mu.Unlock()
				return nil, err
			}
			r.deltaApplied++
			body = reconstructed
		case transport.DeltaSync:
			key := recorderKey{conn: req.ConnID, tid: req.DeltaTID}
			base := r.bases[key]
			if base == nil {
				base = &recorderBase{}
				r.bases[key] = base
			}
			base.epoch = req.DeltaEpoch
			base.body = append(base.body[:0], req.Body...)
			req.DeltaAck = true
			req.DeltaAckTID = req.DeltaTID
			req.DeltaAckEpoch = req.DeltaEpoch
		}
		if r.limit > 0 && len(r.bodies) >= r.limit {
			r.dropped++
		} else {
			kept := make([]byte, len(body))
			copy(kept, body)
			r.bodies = append(r.bodies, kept)
		}
		r.mu.Unlock()
		return nil, nil
	}
}

// applyDelta reconstructs a patch frame against its held base. Callers
// hold r.mu. Any failure wraps wire.ErrDeltaResync; a base that failed
// its checksum is dropped (its bytes can no longer be trusted).
func (r *Recorder) applyDelta(req *transport.Request) ([]byte, error) {
	var f wire.DeltaFrame
	if err := wire.ParseDeltaFrame(&f, req.Body); err != nil {
		return nil, err
	}
	key := recorderKey{conn: req.ConnID, tid: f.TID}
	base := r.bases[key]
	if base == nil {
		return nil, fmt.Errorf("recorder: no base for template %d: %w", f.TID, wire.ErrDeltaResync)
	}
	if base.epoch != f.BaseEpoch {
		return nil, fmt.Errorf("recorder: base epoch %d != frame %d: %w", base.epoch, f.BaseEpoch, wire.ErrDeltaResync)
	}
	if err := f.Apply(base.body); err != nil {
		delete(r.bases, key)
		return nil, err
	}
	base.epoch = f.NewEpoch
	return base.body, nil
}

// Bodies returns a snapshot of the recorded request bodies, in arrival
// order.
func (r *Recorder) Bodies() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.bodies))
	copy(out, r.bodies)
	return out
}

// Count reports recorded bodies.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bodies)
}

// Dropped reports bodies discarded by the retention limit.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ForgetBases drops every held patch base, simulating server-side state
// loss (eviction, restart): the next patch frame of any template is
// refused with a resync and the client must recover losslessly.
func (r *Recorder) ForgetBases() {
	r.mu.Lock()
	r.bases = make(map[recorderKey]*recorderBase)
	r.mu.Unlock()
}

// DeltaApplied reports successfully reconstructed patch frames.
func (r *Recorder) DeltaApplied() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deltaApplied
}

// DeltaResyncs reports patch frames refused with a resync.
func (r *Recorder) DeltaResyncs() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deltaResyncs
}
