package server

import (
	"strings"
	"testing"

	"bsoap/internal/multiref"
	"bsoap/internal/soapdec"
	"bsoap/internal/wire"
)

// TestMultiRefRequestsAreInlined drives a multi-ref-encoded request
// (the format a gSOAP client emits for shared values) through the
// endpoint and verifies dispatch sees the resolved values.
func TestMultiRefRequestsAreInlined(t *testing.T) {
	endpoint := New(Options{})
	var seen []string
	resp := wire.NewMessage("urn:mr", "tagResponse")
	count := resp.AddInt("count", 0)
	endpoint.Register(&soapdec.Schema{
		Namespace: "urn:mr",
		Op:        "tag",
		Params:    []soapdec.ParamSpec{{Name: "labels", Type: wire.ArrayOf(wire.TString)}},
	}, func(req *wire.Message) (*wire.Message, error) {
		seen = seen[:0]
		for i := 0; i < req.NumLeaves(); i++ {
			seen = append(seen, req.LeafString(i))
		}
		count.Set(int32(len(seen)))
		return resp, nil
	})

	// A client using multi-ref encoding for repeated labels.
	m := wire.NewMessage("urn:mr", "tag")
	arr := m.AddStringArray("labels", 6)
	for i := 0; i < 6; i++ {
		arr.Set(i, "shared-label-value-alpha")
	}
	body := multiref.NewEncoder().Serialize(m)
	if !multiref.HasRefs(body) {
		t.Fatal("test setup: no refs emitted")
	}

	respBody, err := endpoint.Handle(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(respBody), ">6<") {
		t.Fatalf("response: %s", respBody)
	}
	for i, s := range seen {
		if s != "shared-label-value-alpha" {
			t.Fatalf("label %d = %q", i, s)
		}
	}
	if st := endpoint.Stats(); st.MultiRefInlined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMalformedMultiRefRejected verifies dangling references error out
// instead of dispatching garbage.
func TestMalformedMultiRefRejected(t *testing.T) {
	endpoint, _ := newSumEndpoint(Options{})
	body := []byte(`<E:Envelope><E:Body><ns1:sum>` +
		`<values SOAP-ENC:arrayType="xsd:double[1]"><item href="#nope"/></values>` +
		`</ns1:sum></E:Body></E:Envelope>`)
	if _, err := endpoint.Handle(body); err == nil {
		t.Fatal("dangling multi-ref accepted")
	}
}
