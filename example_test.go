package bsoap_test

import (
	"fmt"

	"bsoap"
)

// Example shows the core differential serialization loop: a first-time
// send, an in-place rewrite of one changed value, and a verbatim resend
// of the unchanged template.
func Example() {
	msg := bsoap.NewMessage("urn:demo", "sendVector")
	vec := msg.AddDoubleArray("values", 4)
	for i := 0; i < vec.Len(); i++ {
		vec.Set(i, 1.5)
	}

	stub := bsoap.NewStub(bsoap.Config{}, bsoap.NewDiscardSink())

	ci, _ := stub.Call(msg)
	fmt.Println(ci.Match)

	vec.Set(2, 2.5) // same width: rewritten in place
	ci, _ = stub.Call(msg)
	fmt.Println(ci.Match, ci.ValuesRewritten)

	ci, _ = stub.Call(msg)
	fmt.Println(ci.Match)

	// Output:
	// first-time send
	// perfect structural match 1
	// message content match
}

// ExampleWidthPolicy demonstrates stuffing: with fields allocated at
// their maximum lexical width, growing values never trigger shifting.
func ExampleWidthPolicy() {
	msg := bsoap.NewMessage("urn:demo", "send")
	vec := msg.AddDoubleArray("values", 4)
	vec.Set(0, 1) // one character

	stub := bsoap.NewStub(bsoap.Config{
		Width: bsoap.WidthPolicy{Double: bsoap.MaxWidth},
	}, bsoap.NewDiscardSink())
	stub.Call(msg)

	vec.Set(0, -1.7976931348623157e+308) // 24 characters
	ci, _ := stub.Call(msg)
	fmt.Println(ci.Match, "shifts:", ci.Shifts)

	// Output:
	// perfect structural match shifts: 0
}

// ExampleStructOf builds the paper's mesh interface object (MIO) type
// and sends an array of them.
func ExampleStructOf() {
	mio := bsoap.StructOf("ns1:MIO",
		bsoap.Field{Name: "x", Type: bsoap.TInt},
		bsoap.Field{Name: "y", Type: bsoap.TInt},
		bsoap.Field{Name: "value", Type: bsoap.TDouble},
	)
	msg := bsoap.NewMessage("urn:mesh", "exchange")
	arr := msg.AddStructArray("mios", mio, 2)
	arr.SetInt(0, 0, 3)
	arr.SetInt(0, 1, 4)
	arr.SetDouble(0, 2, 5.5)

	stub := bsoap.NewStub(bsoap.Config{}, bsoap.NewDiscardSink())
	ci, _ := stub.Call(msg)
	fmt.Println(ci.Match, "bytes >", ci.Bytes > 0)

	// Output:
	// first-time send bytes > true
}
