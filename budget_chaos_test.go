package bsoap_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsoap"
	"bsoap/internal/faultwire"
	"bsoap/internal/harness"
	"bsoap/internal/serverpool"
	"bsoap/internal/transport"
	"bsoap/internal/workload"
)

// TestBudgetChaosSoak is the memory-budget survival property: the
// pipelined chaos soak rerun with template budgets on BOTH sides sized
// well below the working set, so budget eviction churns continuously
// while the faultwire injector resets 5% of writes under depth-8
// pipelines. Differential transmission is on end to end, so budget
// eviction also destroys server-held patch bases mid-stream — every
// such loss must degrade to a clean resync, never a corrupt decode.
// Calls may fail; what may never happen is a lost future, a server
// self-check divergence (a differential decode against released,
// recycled, or mis-reconstructed template bytes would show up here), or
// either side's template-bytes gauge reading above its budget.
func TestBudgetChaosSoak(t *testing.T) {
	const (
		// A single server replica (one conn's templates, differ state,
		// response buffer) runs ~44 KB here; a single client template
		// entry ~35 KB (arena chunk granularity dominates). Budgets
		// hold one or two of each — far under the 4-conn x 8-shape
		// working sets (~176 KB server, ~141 KB per client pool) —
		// without tripping the oversized-entry exemption that would
		// legitimately push the gauge over budget.
		serverBudget = 96 << 10
		// The client budget holds roughly half the 8-shape working set (~20 KB per stuffed entry):
		// low enough that eviction churns every round, high enough that
		// the alternating submit order below re-hits still-resident
		// templates — the calls that go out as patch frames.
		clientBudget = 96 << 10
		clients      = 4
		window       = 8 // in-flight futures per client == pipeline depth
		rounds       = 60
	)
	sm := transport.NewServerMetrics()
	rt, srv := harness.BenchRuntime(t,
		serverpool.Options{
			DifferentialDeserialization: true,
			Delta:                       true,
			SelfCheck:                   true,
			Metrics:                     sm,
			MaxTemplateBytes:            serverBudget,
		},
		transport.ServerOptions{Metrics: sm, ReadAhead: 8})

	inj := faultwire.New(faultwire.Options{
		Seed: 17,
		Probs: faultwire.Probabilities{
			Reset:          0.05,
			MidStreamClose: 0.02,
			DialError:      0.02,
		},
	})

	pools := make([]*bsoap.Pool, clients)
	for id := range pools {
		opts := bsoap.PoolOptions{
			Size:             1,
			PipelineDepth:    window,
			Addr:             srv.Addr(),
			MaxRetries:       3,
			DialAttempts:     6,
			RedialBackoff:    time.Millisecond,
			RedialBackoffMax: 10 * time.Millisecond,
			RetryBudget:      30 * time.Second,
			MaxTemplateBytes: clientBudget,
			Delta:            true,
			// Stuffed widths keep touches in place (no shifts), so calls
			// between evictions stay delta-eligible and the soak drives
			// real patch traffic into the churning server.
			Config: bsoap.Config{Width: bsoap.WidthPolicy{Double: 18, Int: 9}, EnableStealing: true},
		}
		opts.Sender.Dialer = inj.Dial(nil)
		pools[id] = harness.Pool(t, opts)
	}

	var submitted, resolved, okCalls, failedCalls, failedSubmits atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once

	// The budget watcher: both gauges must never read above their
	// budgets, at any instant, while eviction churns underneath.
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := sm.Snapshot().TemplateBytes; b > serverBudget {
				t.Errorf("server template bytes %d exceed budget %d", b, serverBudget)
				return
			}
			for id, p := range pools {
				if b := p.Stats().TemplateBytes; b > clientBudget {
					t.Errorf("client %d template bytes %d exceed budget %d", id, b, clientBudget)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pool := pools[id]

			msgs := make([]*workload.Doubles, window)
			for i := range msgs {
				msgs[i] = workload.NewDoubles(16+4*i, workload.FillIntermediate)
			}
			futs := make([]*bsoap.Future, window)
			settle := func(i int) {
				if futs[i] == nil {
					return
				}
				if _, err := futs[i].Wait(); err != nil {
					failedCalls.Add(1)
				} else {
					okCalls.Add(1)
				}
				resolved.Add(1)
				futs[i] = nil
			}

			for r := 0; r < rounds; r++ {
				select {
				case <-stop:
					r = rounds - 1 // drain pass: settle, no resubmit below
				default:
				}
				for k := range msgs {
					// Alternate the window direction: under an LRU budget
					// that fits only part of the working set, a strict
					// round-robin would miss on every call; ping-ponging
					// re-hits the resident tail, so evicted-and-rebuilt
					// templates and warm patch-eligible ones interleave.
					i := k
					if r%2 == 1 {
						i = len(msgs) - 1 - k
					}
					m := msgs[i]
					settle(i)
					if r == rounds-1 {
						continue
					}
					m.TouchFraction(0.3)
					f, err := pool.CallAsync(m.Msg)
					if err != nil {
						failedSubmits.Add(1)
						continue
					}
					submitted.Add(1)
					futs[i] = f
				}
			}
			for i := range futs {
				settle(i)
			}
			if got := pool.Stats().FuturesPending; got != 0 {
				t.Errorf("client %d: futures_pending = %d after drain", id, got)
			}
		}(id)
	}

	// Drain the server gracefully once the load has ramped, while
	// pipelines are full and eviction is churning.
	deadline := time.Now().Add(20 * time.Second)
	for okCalls.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stopOnce.Do(func() { close(stop) })
	wg.Wait()
	<-watchDone

	if submitted.Load() != resolved.Load() {
		t.Fatalf("lost futures: %d submitted, %d resolved", submitted.Load(), resolved.Load())
	}
	if okCalls.Load() == 0 {
		t.Fatal("no call survived the chaos; injection rates are too hot to prove anything")
	}
	if inj.Faults() == 0 {
		t.Fatal("no faults injected; the soak proved nothing")
	}
	sst := sm.Snapshot()
	if sst.ReplicaBudgetEvictions == 0 {
		t.Fatal("server never budget-evicted; the budget is too loose to prove anything")
	}
	if hw := sst.TemplateBytesHighWater; hw > serverBudget {
		t.Fatalf("server high water %d exceeds budget %d", hw, serverBudget)
	}
	var clientBudgetEvictions, clientHW, deltaSends, deltaResyncs int64
	for _, p := range pools {
		cst := p.Stats()
		clientBudgetEvictions += cst.TemplateBudgetEvictions
		deltaSends += cst.DeltaSends
		deltaResyncs += cst.DeltaResyncs
		if cst.TemplateBytesHighWater > clientHW {
			clientHW = cst.TemplateBytesHighWater
		}
	}
	if deltaSends == 0 {
		t.Fatal("no client ever sent a patch frame; the soak never exercised differential transmission")
	}
	if clientBudgetEvictions == 0 {
		t.Fatal("no client ever budget-evicted; the budget is too loose to prove anything")
	}
	if clientHW > clientBudget {
		t.Fatalf("client high water %d exceeds budget %d", clientHW, clientBudget)
	}
	st := rt.Stats()
	if st.Requests == 0 {
		t.Fatal("runtime decoded no requests")
	}
	if st.SelfCheckFails != 0 {
		t.Fatalf("self-check fails: %d (of %d requests, faults %v)",
			st.SelfCheckFails, st.Requests, inj.FaultsByKind())
	}
	t.Logf("soak: %d submitted, %d ok, %d failed, %d requests (%d full / %d fast), %d patch sends, %d resyncs (%d server-side), server hw %d/%d (%d budget evictions), client hw %d/%d (%d budget evictions), %d faults %v",
		submitted.Load(), okCalls.Load(), failedCalls.Load(),
		st.Requests, st.FullParses, st.DiffDecodes,
		deltaSends, deltaResyncs, st.DeltaResyncs,
		sst.TemplateBytesHighWater, int64(serverBudget), sst.ReplicaBudgetEvictions,
		clientHW, int64(clientBudget), clientBudgetEvictions,
		inj.Faults(), inj.FaultsByKind())
}
