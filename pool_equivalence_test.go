package bsoap_test

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"

	"bsoap"
	"bsoap/internal/baseline"
	"bsoap/internal/chunk"
	"bsoap/internal/harness"
	"bsoap/internal/wire"
	"bsoap/internal/workload"
)

// canon strips the whitespace runs that stuffing, shrink padding and
// tag shifts leave between a '>' and the following '<'. For numeric
// workloads (whose values contain no whitespace) this is a canonical
// form: two serializations of the same values canonicalize to identical
// bytes regardless of how the template padded them.
func canon(b []byte) []byte {
	out := make([]byte, 0, len(b))
	gap := false
	for _, c := range b {
		switch {
		case c == '>':
			gap = true
			out = append(out, c)
		case c == '<':
			gap = false
			out = append(out, c)
		case gap && (c == ' ' || c == '\t' || c == '\n' || c == '\r'):
			// inter-tag padding: drop.
		default:
			out = append(out, c)
		}
	}
	return out
}

// recordSink is an in-process core.Sink capturing every message sent
// through the pool, in order.
type recordSink struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (r *recordSink) Send(bufs net.Buffers) error {
	var b []byte
	for _, seg := range bufs {
		b = append(b, seg...)
	}
	r.mu.Lock()
	r.msgs = append(r.msgs, b)
	r.mu.Unlock()
	return nil
}

func (r *recordSink) last() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.msgs) == 0 {
		return nil
	}
	return r.msgs[len(r.msgs)-1]
}

// target is one message under mutation: mutate applies a random edit
// (possibly none) before each call.
type target struct {
	name   string
	msg    *wire.Message
	mutate func(rng *rand.Rand)
}

func doublesTarget(name string, n int) *target {
	w := workload.NewDoubles(n, workload.FillMin)
	arr := w.Arr
	return &target{name: name, msg: w.Msg, mutate: func(rng *rand.Rand) {
		switch rng.Intn(10) {
		case 0, 1, 2:
			// Untouched: the next call must be a content match resend.
		case 3, 4, 5, 6:
			// Width-neutral touches (1-char value to 1-char value) and
			// shrinks of previously grown elements.
			for i := 0; i < arr.Len(); i++ {
				if rng.Intn(3) == 0 {
					if arr.Get(i) == workload.MinDouble {
						arr.Set(i, workload.MinDouble2)
					} else {
						arr.Set(i, workload.MinDouble)
					}
				}
			}
		case 7, 8:
			// Grow a few elements to maximal width, forcing steals or
			// shifts (and chunk splits under small-chunk configs).
			for k := 0; k < 3; k++ {
				arr.Set(rng.Intn(arr.Len()), workload.MaxDouble)
			}
		case 9:
			// Structural change: the next call is a first-time send.
			w.Msg.ResizeArray(0, 8+rng.Intn(96))
		}
	}}
}

func intsTarget(name string, n int) *target {
	w := workload.NewInts(n, workload.FillIntermediate)
	arr := w.Arr
	return &target{name: name, msg: w.Msg, mutate: func(rng *rand.Rand) {
		switch rng.Intn(8) {
		case 0, 1:
		case 2, 3, 4:
			// Width-neutral touches (the helpers on workload.Ints cache
			// the construction-time length, so after a resize we walk the
			// array ref directly).
			for i := 0; i < arr.Len(); i++ {
				if rng.Intn(3) == 0 {
					if arr.Get(i) == workload.MinInt {
						arr.Set(i, workload.MinInt+1)
					} else {
						arr.Set(i, workload.MinInt)
					}
				}
			}
		case 5, 6:
			for k := 0; k < 2; k++ {
				arr.Set(rng.Intn(arr.Len()), workload.MaxInt)
			}
		case 7:
			w.Msg.ResizeArray(0, 8+rng.Intn(64))
		}
	}}
}

func miosTarget(name string, n int) *target {
	w := workload.NewMIOs(n, workload.FillIntermediate)
	arr := w.Arr
	return &target{name: name, msg: w.Msg, mutate: func(rng *rand.Rand) {
		switch rng.Intn(8) {
		case 0, 1:
		case 2, 3, 4:
			for i := 0; i < arr.Len(); i++ {
				if rng.Intn(2) == 0 {
					if arr.Double(i, 2) == workload.MinDouble {
						arr.SetDouble(i, 2, workload.MinDouble2)
					} else {
						arr.SetDouble(i, 2, workload.MinDouble)
					}
				}
			}
		case 5, 6:
			i := rng.Intn(arr.Len())
			arr.SetInt(i, 0, workload.MaxInt)
			arr.SetDouble(i, 2, workload.MaxDouble)
		case 7:
			w.Msg.ResizeArray(0, 4+rng.Intn(24))
		}
	}}
}

// equivConfig is one stuffing/stealing/chunking configuration the
// equivalence properties are checked under; the four cover the policy
// space the paper's experiments sweep.
type equivConfig struct {
	name        string
	cfg         bsoap.Config
	wantPartial bool
}

func equivalenceConfigs() []equivConfig {
	return []equivConfig{
		{"default", bsoap.Config{}, true},
		{"stuffed-18-9-stealing", bsoap.Config{
			Width:          bsoap.WidthPolicy{Double: 18, Int: 9},
			EnableStealing: true,
		}, true},
		{"stuffed-maxwidth", bsoap.Config{
			Width: bsoap.WidthPolicy{Double: bsoap.MaxWidth, Int: bsoap.MaxWidth},
		}, false}, // nothing can outgrow its field: no shifts, no partial matches
		{"small-chunks-stealing", bsoap.Config{
			Chunk:          chunk.Config{ChunkSize: 256},
			EnableStealing: true,
		}, true},
	}
}

// TestPoolBaselineEquivalence is the pool-level property test: a pooled
// differential-serialization client and the from-scratch gSOAP-like
// baseline serializer must agree byte-for-byte (modulo padding) on
// every call of a randomized mutation schedule — across stuffing
// policies, padding stealing, small chunks, template rebinding between
// duplicate messages, and all four match classes.
func TestPoolBaselineEquivalence(t *testing.T) {
	for _, tc := range equivalenceConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			sink := &recordSink{}
			p, err := bsoap.NewPool(bsoap.PoolOptions{
				Size:     1,
				Replicas: 1,
				Config:   tc.cfg,
				Dial:     func() (bsoap.Sink, error) { return sink, nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			// Two doubles messages share one (operation, signature) — the
			// schedule makes them alternate on the single replica, so
			// template rebinds are part of what equivalence covers.
			targets := []*target{
				doublesTarget("doubles-a", 64),
				doublesTarget("doubles-b", 64),
				intsTarget("ints", 64),
				miosTarget("mios", 16),
			}
			ref := baseline.NewGSOAPLike()
			rng := rand.New(rand.NewSource(7))
			seen := map[bsoap.MatchKind]bool{}

			for round := 0; round < 400; round++ {
				tg := targets[rng.Intn(len(targets))]
				tg.mutate(rng)
				want := canon(ref.Serialize(tg.msg))
				ci, err := p.Call(tg.msg)
				if err != nil {
					t.Fatalf("round %d (%s): %v", round, tg.name, err)
				}
				seen[ci.Match] = true
				got := canon(sink.last())
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d (%s, %v): pool bytes diverge from baseline\n got: %s\nwant: %s",
						round, tg.name, ci.Match, got, want)
				}
			}

			wantKinds := []bsoap.MatchKind{bsoap.FirstTime, bsoap.ContentMatch, bsoap.StructuralMatch}
			if tc.wantPartial {
				wantKinds = append(wantKinds, bsoap.PartialMatch)
			}
			for _, k := range wantKinds {
				if !seen[k] {
					t.Errorf("schedule never produced a %v call", k)
				}
			}
			if !tc.wantPartial && seen[bsoap.PartialMatch] {
				t.Errorf("max-width stuffing produced a partial match (a value outgrew its field)")
			}
		})
	}
}

// TestPoolPipelinedEquivalence is the async-path property test: the
// same randomized mutation schedule, run once through a serial pool
// (recording sink) and once through a pipelined pool (depth 4, over a
// real connection to a recording server with matching read-ahead),
// must put byte-identical bodies (modulo padding) on the wire, in the
// same order. Pipelining reorders nothing and shares nothing it should
// not: submission order is wire order, and a message whose previous
// future has resolved may be mutated and resubmitted freely.
func TestPoolPipelinedEquivalence(t *testing.T) {
	const depth = 4
	const rounds = 400

	for _, tc := range equivalenceConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			sink := &recordSink{}
			serial, err := bsoap.NewPool(bsoap.PoolOptions{
				Size:     1,
				Replicas: 1,
				Config:   tc.cfg,
				Dial:     func() (bsoap.Sink, error) { return sink, nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer serial.Close()

			rec, piped := harness.Recorder(t, nil, bsoap.PoolOptions{
				Size:          1,
				Replicas:      1,
				Config:        tc.cfg,
				PipelineDepth: depth,
			})

			// Both sides run identical schedules: one rng picks the target
			// each round, and each side mutates its own copy with its own
			// rng — seeded alike, and consuming draws in the same order, so
			// the value histories are identical.
			mkTargets := func() []*target {
				return []*target{
					doublesTarget("doubles-a", 64),
					doublesTarget("doubles-b", 64),
					intsTarget("ints", 64),
					miosTarget("mios", 16),
				}
			}
			sTargets, pTargets := mkTargets(), mkTargets()
			sched := rand.New(rand.NewSource(11))
			sRng := rand.New(rand.NewSource(23))
			pRng := rand.New(rand.NewSource(23))
			pending := make([]*bsoap.Future, len(pTargets))

			for round := 0; round < rounds; round++ {
				i := sched.Intn(len(sTargets))
				st, pt := sTargets[i], pTargets[i]
				// Per-message confinement extends to futures: the pipelined
				// target may still have bytes in flight, so resolve its
				// previous future before mutating.
				if pending[i] != nil {
					if _, err := pending[i].Wait(); err != nil {
						t.Fatalf("round %d (%s): wait: %v", round, pt.name, err)
					}
					pending[i] = nil
				}
				st.mutate(sRng)
				pt.mutate(pRng)
				if _, err := serial.Call(st.msg); err != nil {
					t.Fatalf("round %d (%s): serial: %v", round, st.name, err)
				}
				f, err := piped.CallAsync(pt.msg)
				if err != nil {
					t.Fatalf("round %d (%s): submit: %v", round, pt.name, err)
				}
				pending[i] = f
			}
			for i, f := range pending {
				if f == nil {
					continue
				}
				if _, err := f.Wait(); err != nil {
					t.Fatalf("drain (%s): %v", pTargets[i].name, err)
				}
			}

			got := rec.Bodies()
			if len(sink.msgs) != rounds || len(got) != rounds {
				t.Fatalf("serial recorded %d bodies, server accepted %d, want %d each",
					len(sink.msgs), len(got), rounds)
			}
			for i := range got {
				want := canon(sink.msgs[i])
				if !bytes.Equal(canon(got[i]), want) {
					t.Fatalf("call %d: pipelined body diverges from serial\n got: %s\nwant: %s",
						i, canon(got[i]), want)
				}
			}
			if s := piped.Stats(); s.AsyncCalls != rounds || s.FuturesPending != 0 || s.Errors != 0 {
				t.Fatalf("async_calls=%d futures_pending=%d errors=%d, want %d/0/0",
					s.AsyncCalls, s.FuturesPending, s.Errors, rounds)
			}
		})
	}
}
